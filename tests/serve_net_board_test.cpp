// BoardDaemon + RemoteBoard integration, all in-process (the daemon runs on
// a thread, no fork): hello handshake, request round-trips over loopback and
// unix sockets, telemetry-backed board probes, control verbs, dead-worker
// semantics, cross-board migration through a ClusterRouter of RemoteBoards,
// and online re-pricing visibility end to end.

#include <gtest/gtest.h>
#include <unistd.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/workflow.hpp"
#include "serve/cluster/router.hpp"
#include "serve/net/boardd.hpp"
#include "serve/net/remote_board.hpp"

namespace {

using namespace seneca;
using serve::net::BoardDaemon;
using serve::net::BoardDaemonConfig;
using serve::net::Endpoint;
using serve::net::RemoteBoard;
using serve::net::RemoteBoardConfig;

serve::ServerConfig small_server(std::size_t capacity = 16) {
  serve::ServerConfig cfg;
  cfg.queue.capacity = capacity;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 1.0;
  cfg.batcher.interactive_max_wait_ms = 0.0;
  cfg.batcher.interactive_max_batch_size = 1;
  return cfg;
}

serve::cluster::BoardConfig small_board(const std::string& name,
                                        const dpu::XModel& xm) {
  serve::cluster::BoardConfig cfg;
  cfg.name = name;
  cfg.ladder.push_back({"2M", xm, 2});
  cfg.server = small_server();
  cfg.sim_images = 4;  // cheap DES pricing pass
  return cfg;
}

tensor::TensorI8 make_input(std::int64_t side) {
  tensor::TensorI8 t(tensor::Shape{side, side, 1});
  std::int8_t v = 1;
  for (auto& x : t) x = v++;
  return t;
}

/// One compiled 2M model shared by every test (compilation dominates).
const dpu::XModel& shared_xmodel() {
  static const dpu::XModel xm =
      core::build_timing_xmodel("2M", dpu::DpuArch::b4096(), 32);
  return xm;
}

/// BoardDaemon on a background thread + its endpoint.
class DaemonFixture {
 public:
  explicit DaemonFixture(serve::cluster::BoardConfig board,
                         Endpoint listen = {}) {
    BoardDaemonConfig cfg;
    cfg.board = std::move(board);
    cfg.listen = listen;
    cfg.poll_ms = 20.0;
    daemon_ = std::make_unique<BoardDaemon>(std::move(cfg));
    thread_ = std::thread([this] { daemon_->run(); });
  }
  ~DaemonFixture() {
    daemon_->stop();
    thread_.join();
  }
  const Endpoint& endpoint() const { return daemon_->endpoint(); }
  BoardDaemon& daemon() { return *daemon_; }

 private:
  std::unique_ptr<BoardDaemon> daemon_;
  std::thread thread_;
};

RemoteBoardConfig fast_remote() {
  RemoteBoardConfig cfg;
  cfg.heartbeat_interval_ms = 10.0;
  return cfg;
}

// ------------------------------------------------------------ round trips

TEST(RemoteBoardTest, HelloCarriesIdentityAndCosts) {
  DaemonFixture fx(small_board("wire0", shared_xmodel()));
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  EXPECT_EQ(board.name(), "wire0");
  ASSERT_EQ(board.num_rungs(), 1u);
  EXPECT_EQ(board.queue_capacity(), 16u);
  const auto cost = board.rung_cost(0);
  EXPECT_EQ(cost.model, "2M");
  EXPECT_GT(cost.seconds_per_frame, 0.0);
  EXPECT_GT(cost.joules_per_frame, 0.0);
  board.shutdown();
}

TEST(RemoteBoardTest, SubmitRoundTripsOverTcp) {
  DaemonFixture fx(small_board("wire0", shared_xmodel()));
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  const serve::Response r =
      board.submit(serve::Priority::kInteractive, make_input(32), 0.0).get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.model_used, "2M");
  EXPECT_GT(r.output.numel(), 0);
  EXPECT_GT(r.total_ms, 0.0);
  board.shutdown();
}

TEST(RemoteBoardTest, SubmitRoundTripsOverUnixSocket) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = "/tmp/seneca-boardtest-" + std::to_string(::getpid()) + ".sock";
  DaemonFixture fx(small_board("wire0", shared_xmodel()), ep);
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  const serve::Response r =
      board.submit(serve::Priority::kBatch, make_input(32), 0.0).get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  board.shutdown();
}

TEST(RemoteBoardTest, ManyConcurrentSubmitsAllComplete) {
  DaemonFixture fx(small_board("wire0", shared_xmodel()));
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 24; ++i) {
    futs.push_back(
        board.submit(i % 3 == 0 ? serve::Priority::kInteractive
                                : serve::Priority::kBatch,
                     make_input(32), 0.0));
  }
  int ok = 0;
  for (auto& f : futs) {
    const serve::Response r = f.get();
    // Under burst the tiny queue may reject; the contract is every future
    // resolves with a terminal status, nothing lost on the wire.
    if (r.status == serve::Status::kOk) ++ok;
    EXPECT_NE(r.status, serve::Status::kMigrated);
  }
  EXPECT_GT(ok, 0);
  board.shutdown();
}

// ------------------------------------------------------- telemetry probes

TEST(RemoteBoardTest, TelemetryBacksBoardProbes) {
  DaemonFixture fx(small_board("wire0", shared_xmodel()));
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  (void)board.submit(serve::Priority::kBatch, make_input(32), 0.0).get();
  ASSERT_TRUE(board.refresh(2000.0));
  EXPECT_GE(board.frames_served(), 1u);
  EXPECT_GT(board.energy_joules(), 0.0);
  EXPECT_GT(board.busy_seconds(), 0.0);
  const serve::MetricsSnapshot m = board.metrics();
  EXPECT_GE(m.submitted, 1u);
  EXPECT_GE(m.served, 1u);
  EXPECT_FALSE(board.fault_injected());
  board.shutdown();
}

TEST(RemoteBoardTest, ControlFaultRoundTrips) {
  DaemonFixture fx(small_board("wire0", shared_xmodel()));
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  board.inject_fault(true);
  // The fault flag arrives with the next telemetry.
  bool saw_fault = false;
  for (int i = 0; i < 100 && !saw_fault; ++i) {
    ASSERT_TRUE(board.refresh(2000.0));
    saw_fault = board.fault_injected();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(fx.daemon().board().fault_injected());
  board.inject_fault(false);
  board.shutdown();
}

// ----------------------------------------------------------- dead workers

TEST(RemoteBoardTest, DaemonStopFailsPendingWithError) {
  auto fx = std::make_unique<DaemonFixture>(
      small_board("wire0", shared_xmodel()));
  RemoteBoard board(0, fx->endpoint(), fast_remote());
  // Wedge the wire: kill the daemon while requests may be queued.
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(board.submit(serve::Priority::kBatch, make_input(32), 0.0));
  }
  fx.reset();  // daemon torn down; connection drops
  for (auto& f : futs) {
    const serve::Response r = f.get();  // must not hang
    EXPECT_TRUE(r.status == serve::Status::kOk ||
                r.status == serve::Status::kError ||
                r.status == serve::Status::kMigrated)
        << to_string(r.status);
  }
  EXPECT_TRUE(board.dead());
  EXPECT_TRUE(board.fault_injected()) << "dead board must read as faulted";
  // Submits after death fail fast instead of hanging.
  const serve::Response late =
      board.submit(serve::Priority::kBatch, make_input(32), 0.0).get();
  EXPECT_EQ(late.status, serve::Status::kError);
  board.shutdown();
}

// -------------------------------------------------- migration end to end

TEST(RemoteBoardTest, RouterMigratesOffDeadRemoteBoard) {
  auto fx0 = std::make_unique<DaemonFixture>(
      small_board("wire0", shared_xmodel()));
  DaemonFixture fx1(small_board("wire1", shared_xmodel()));

  serve::cluster::ClusterConfig ccfg;
  ccfg.policy = serve::cluster::PolicyKind::kJoinShortestQueue;
  ccfg.migrate.enable = true;
  ccfg.migrate.monitor_interval_ms = 5.0;
  std::vector<std::shared_ptr<serve::cluster::Board>> fleet;
  fleet.push_back(std::make_shared<RemoteBoard>(0, fx0->endpoint(),
                                                fast_remote()));
  fleet.push_back(std::make_shared<RemoteBoard>(1, fx1.endpoint(),
                                                fast_remote()));
  serve::cluster::ClusterRouter router(std::move(fleet), std::move(ccfg));

  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(
        router.submit(serve::Priority::kBatch, make_input(32), 0.0));
  }
  fx0.reset();  // board 0 dies mid-run; its pendings fail -> router re-routes
  int ok = 0;
  for (auto& f : futs) {
    const serve::Response r = f.get();
    // The client-visible contract: kMigrated never leaks, nothing hangs.
    EXPECT_NE(r.status, serve::Status::kMigrated);
    if (r.status == serve::Status::kOk) ++ok;
  }
  // Everything either served (possibly after a re-route) or was rejected by
  // a full queue — with no deadline, nothing may be lost as expired.
  const serve::cluster::ClusterSnapshot snap = router.snapshot();
  EXPECT_EQ(snap.expired, 0u);
  EXPECT_GT(ok, 0);
  router.shutdown();
}

// ------------------------------------------------------ online re-pricing

TEST(RemoteBoardTest, OnlineRepriceReachesRemoteCostView) {
  serve::cluster::BoardConfig bc = small_board("wire0", shared_xmodel());
  bc.online_reprice = true;
  DaemonFixture fx(std::move(bc));
  RemoteBoard board(0, fx.endpoint(), fast_remote());
  const auto des_cost = board.rung_cost(0);
  for (int i = 0; i < 6; ++i) {
    (void)board.submit(serve::Priority::kBatch, make_input(32), 0.0).get();
  }
  ASSERT_TRUE(board.refresh(2000.0));
  const auto live_cost = board.rung_cost(0);
  // Wall-clock-observed service time replaces the DES estimate; on a dev
  // host the two have no reason to coincide.
  EXPECT_GT(live_cost.seconds_per_frame, 0.0);
  EXPECT_NE(live_cost.seconds_per_frame, des_cost.seconds_per_frame);
  // And the daemon's own board agrees (same source of truth).
  const auto local = fx.daemon().board().observed(0);
  EXPECT_GT(local.samples, 0u);
  board.shutdown();
}

}  // namespace
