// Metric tests: DSC/TPR/TNR on hand-computed confusion cases, global
// weighting, run statistics, boxplots, table rendering.
#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "eval/stats.hpp"
#include "eval/table.hpp"

namespace seneca::eval {
namespace {

using tensor::Shape;

LabelMap make_labels(std::initializer_list<std::int32_t> values) {
  LabelMap m(Shape{static_cast<std::int64_t>(values.size())});
  std::int64_t i = 0;
  for (auto v : values) m[i++] = v;
  return m;
}

TEST(BinaryCountsTest, DiceHandComputed) {
  BinaryCounts c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 2;
  EXPECT_DOUBLE_EQ(c.dice(), 16.0 / 20.0);
}

TEST(BinaryCountsTest, EmptyClassIsPerfect) {
  BinaryCounts c;
  c.tn = 100;
  EXPECT_DOUBLE_EQ(c.dice(), 1.0);
  EXPECT_DOUBLE_EQ(c.tpr(), 1.0);
}

TEST(BinaryCountsTest, TprTnr) {
  BinaryCounts c;
  c.tp = 9;
  c.fn = 1;
  c.tn = 90;
  c.fp = 10;
  EXPECT_DOUBLE_EQ(c.tpr(), 0.9);
  EXPECT_DOUBLE_EQ(c.tnr(), 0.9);
}

TEST(Confusion, PerfectPrediction) {
  const LabelMap truth = make_labels({0, 1, 2, 1, 0});
  const auto counts = confusion_per_class(truth, truth, 3);
  for (const auto& c : counts) {
    EXPECT_EQ(c.fp, 0);
    EXPECT_EQ(c.fn, 0);
    EXPECT_DOUBLE_EQ(c.dice(), 1.0);
  }
}

TEST(Confusion, HandComputedCase) {
  const LabelMap pred = make_labels({1, 1, 0, 2});
  const LabelMap truth = make_labels({1, 0, 0, 1});
  const auto counts = confusion_per_class(pred, truth, 3);
  // class 1: tp=1 (pos 0), fp=1 (pos 1), fn=1 (pos 3)
  EXPECT_EQ(counts[1].tp, 1);
  EXPECT_EQ(counts[1].fp, 1);
  EXPECT_EQ(counts[1].fn, 1);
  EXPECT_DOUBLE_EQ(counts[1].dice(), 2.0 / 4.0);
  // class 2: tp=0, fp=1, fn=0
  EXPECT_EQ(counts[2].fp, 1);
}

TEST(Confusion, SizeMismatchThrows) {
  EXPECT_THROW(confusion_per_class(make_labels({0, 1}), make_labels({0}), 2),
               std::invalid_argument);
}

TEST(Evaluator, AccumulatesAcrossAdds) {
  SegmentationEvaluator ev(2);
  ev.add(make_labels({1, 0}), make_labels({1, 1}));
  ev.add(make_labels({1, 1}), make_labels({1, 1}));
  // class 1: tp=3, fn=1, fp=0 -> dice 6/7
  EXPECT_DOUBLE_EQ(ev.dice_per_class()[1], 6.0 / 7.0);
}

TEST(Evaluator, GlobalDiceWeightsByFrequency) {
  SegmentationEvaluator ev(3);
  // class 1: 90 px perfectly predicted; class 2: 10 px all missed
  LabelMap truth(Shape{100});
  LabelMap pred(Shape{100});
  for (std::int64_t i = 0; i < 100; ++i) {
    truth[i] = i < 90 ? 1 : 2;
    pred[i] = 1;
  }
  ev.add(pred, truth);
  // class1 dice = 180/190, class2 dice = 0; weights 90:10
  const double expected = (90.0 * (180.0 / 190.0) + 10.0 * 0.0) / 100.0;
  EXPECT_NEAR(ev.global_dice(), expected, 1e-9);
}

TEST(Evaluator, GlobalMetricsIgnoreBackground) {
  SegmentationEvaluator ev(2);
  // all background, predicted perfectly: no organ pixels -> global = 1
  ev.add(make_labels({0, 0, 0}), make_labels({0, 0, 0}));
  EXPECT_DOUBLE_EQ(ev.global_dice(), 1.0);
}

TEST(Evaluator, TnrNearOneForSparsePredictions) {
  SegmentationEvaluator ev(2);
  LabelMap truth(Shape{1000}, 0);
  LabelMap pred(Shape{1000}, 0);
  truth[0] = 1;
  pred[0] = 1;
  pred[1] = 1;  // one FP among 999 negatives
  ev.add(pred, truth);
  EXPECT_GT(ev.global_tnr(), 0.99);
}

TEST(Stats, MeanAndStd) {
  const RunStats s = compute_stats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.mean, 5.0, 1e-9);
  EXPECT_NEAR(s.stddev, 2.138, 0.01);  // sample std
  EXPECT_EQ(s.n, 8u);
}

TEST(Stats, SingleSampleZeroStd) {
  const RunStats s = compute_stats({3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, EmptyIsZero) {
  const RunStats s = compute_stats({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, FormatContainsPlusMinus) {
  const std::string out = format_stats(compute_stats({1.0, 2.0, 3.0}), 2);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("+/-"), std::string::npos);
}

TEST(Boxplot, QuartilesOfKnownData) {
  const BoxplotStats b = compute_boxplot({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(b.minimum, 1.0);
  EXPECT_DOUBLE_EQ(b.maximum, 9.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
}

TEST(Boxplot, UnsortedInputHandled) {
  const BoxplotStats b = compute_boxplot({9, 1, 5});
  EXPECT_DOUBLE_EQ(b.minimum, 1.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.maximum, 9.0);
}

TEST(Boxplot, RenderHasBracketsAndMedian) {
  BoxplotStats b;
  b.minimum = 0.2;
  b.q1 = 0.4;
  b.median = 0.5;
  b.q3 = 0.6;
  b.maximum = 0.8;
  const std::string line = render_boxplot(b, 0.0, 1.0, 50);
  EXPECT_EQ(line.size(), 50u);
  EXPECT_NE(line.find('['), std::string::npos);
  EXPECT_NE(line.find(']'), std::string::npos);
  EXPECT_NE(line.find('|'), std::string::npos);
  EXPECT_NE(line.find('='), std::string::npos);
}

TEST(TableRender, AlignsAndContainsCells) {
  Table t({"Config", "FPS", "DSC"});
  t.add_row({"1M", Table::num(335.4, 1), Table::pm(93.04, 0.07)});
  t.add_row({"16M", Table::num(98.12, 2), "n/a"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Config"), std::string::npos);
  EXPECT_NE(out.find("335.4"), std::string::npos);
  EXPECT_NE(out.find("93.04 +/- 0.07"), std::string::npos);
  EXPECT_NE(out.find("n/a"), std::string::npos);
  // header separator row present
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableRender, ShortRowsPadded) {
  Table t({"A", "B"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

}  // namespace
}  // namespace seneca::eval
