// Workflow API tests: end-to-end pipeline at miniature scale, caching,
// timing-model entry point.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/evaluate.hpp"
#include "core/workflow.hpp"

namespace seneca::core {
namespace {

WorkflowConfig tiny_config(const std::filesystem::path& dir) {
  WorkflowConfig cfg;
  cfg.dataset.num_volumes = 6;
  cfg.dataset.slices_per_volume = 6;
  cfg.dataset.resolution = 32;
  cfg.model_name = "1M";  // depth 4 fits 32x32
  cfg.train.epochs = 1;
  cfg.train.learning_rate = 1e-3f;
  cfg.calibration_images = 6;
  cfg.artifacts_dir = dir;
  return cfg;
}

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "seneca_wf_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(WorkflowTest, EndToEndProducesAllArtifacts) {
  Workflow wf(tiny_config(dir_));
  WorkflowArtifacts art = wf.run();
  EXPECT_FALSE(art.trained_from_cache);
  ASSERT_NE(art.fp32, nullptr);
  EXPECT_GT(art.fp32->num_parameters(), 100000);
  EXPECT_FALSE(art.folded.ops.empty());
  EXPECT_FALSE(art.qgraph.ops.empty());
  EXPECT_FALSE(art.xmodel.layers.empty());
  EXPECT_EQ(art.xmodel.input_shape, (tensor::Shape{32, 32, 1}));
  EXPECT_EQ(art.calibration.images.size(), 6u);
  EXPECT_FALSE(art.dataset.train.empty());
  EXPECT_FALSE(art.dataset.test.empty());
}

TEST_F(WorkflowTest, SecondRunUsesCache) {
  WorkflowConfig cfg = tiny_config(dir_);
  Workflow first(cfg);
  first.run();
  Workflow second(cfg);
  WorkflowArtifacts art = second.run();
  EXPECT_TRUE(art.trained_from_cache);
}

TEST_F(WorkflowTest, CachedModelIsIdentical) {
  WorkflowConfig cfg = tiny_config(dir_);
  WorkflowArtifacts a = Workflow(cfg).run();
  WorkflowArtifacts b = Workflow(cfg).run();
  const auto& img = a.dataset.test[0].sample.image;
  EXPECT_LT(tensor::max_abs_diff(a.fp32->forward(img), b.fp32->forward(img)),
            1e-7);
}

TEST_F(WorkflowTest, CacheKeyReflectsConfig) {
  WorkflowConfig cfg = tiny_config(dir_);
  const std::string base = Workflow(cfg).train_cache_key();
  cfg.train.epochs = 2;
  EXPECT_NE(Workflow(cfg).train_cache_key(), base);
  cfg = tiny_config(dir_);
  cfg.weighted_loss = false;
  EXPECT_NE(Workflow(cfg).train_cache_key(), base);
}

TEST_F(WorkflowTest, EvaluationRunsOnArtifacts) {
  Workflow wf(tiny_config(dir_));
  WorkflowArtifacts art = wf.run();
  auto ev32 = evaluate_fp32(*art.fp32, art.dataset.test);
  auto ev8 = evaluate_int8(art.xmodel, art.dataset.test);
  EXPECT_GE(ev32.global_dice(), 0.0);
  EXPECT_LE(ev32.global_dice(), 1.0);
  EXPECT_GE(ev8.global_dice(), 0.0);
  EXPECT_LE(ev8.global_dice(), 1.0);
  EXPECT_GE(ev8.global_tnr(), 0.0);
}

TEST_F(WorkflowTest, PredictionsShapeMatchesInput) {
  Workflow wf(tiny_config(dir_));
  WorkflowArtifacts art = wf.run();
  dpu::DpuCoreSim core(&art.xmodel);
  const auto labels = predict_int8(core, art.dataset.test[0].sample.image);
  EXPECT_EQ(labels.shape(), (tensor::Shape{32, 32}));
  for (std::int64_t i = 0; i < labels.numel(); ++i) {
    ASSERT_GE(labels[i], 0);
    ASSERT_LT(labels[i], 6);
  }
}

TEST_F(WorkflowTest, PerCaseDiceGrouping) {
  Workflow wf(tiny_config(dir_));
  WorkflowArtifacts art = wf.run();
  const auto samples = per_case_organ_dice_int8(art.xmodel, art.dataset.test);
  ASSERT_EQ(samples.size(), 6u);
  // every per-case DSC is a valid fraction
  for (std::size_t c = 1; c < samples.size(); ++c) {
    for (double d : samples[c]) {
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(TimingXModel, FullResolutionCompiles) {
  const dpu::XModel xm = build_timing_xmodel("1M");
  EXPECT_EQ(xm.input_shape, (tensor::Shape{256, 256, 1}));
  EXPECT_GT(xm.total_macs(), 100ll * 1000 * 1000);
  EXPECT_GT(xm.latency_seconds(2), 1e-3);
  EXPECT_LT(xm.latency_seconds(2), 0.1);
}

TEST(TimingXModel, BiggerModelsSlower) {
  const double lat_1m = build_timing_xmodel("1M").latency_seconds(2);
  const double lat_16m = build_timing_xmodel("16M").latency_seconds(2);
  EXPECT_GT(lat_16m, 2.0 * lat_1m);
}

TEST(TimingXModel, ArchSweepMonotone) {
  const double big = build_timing_xmodel("1M", dpu::DpuArch::b4096()).latency_seconds(1);
  const double small = build_timing_xmodel("1M", dpu::DpuArch::b512()).latency_seconds(1);
  EXPECT_GT(small, big);
}

}  // namespace
}  // namespace seneca::core
