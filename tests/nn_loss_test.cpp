// Loss-function tests: values on hand-built cases, analytic gradients vs
// finite differences (losses act directly on probabilities, so numeric
// checks are exact up to float noise), weighting properties.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace seneca::nn {
namespace {

using tensor::Shape;
using tensor::TensorF;

/// Random probability maps (positive, normalized per pixel).
TensorF random_probs(std::int64_t n, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorF p(Shape{n, c});
  for (std::int64_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      p[i * c + ch] = static_cast<float>(rng.uniform(0.05, 1.0));
      sum += p[i * c + ch];
    }
    for (std::int64_t ch = 0; ch < c; ++ch) {
      p[i * c + ch] = static_cast<float>(p[i * c + ch] / sum);
    }
  }
  return p;
}

LabelMap random_labels(std::int64_t n, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  LabelMap y(Shape{n});
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform_index(static_cast<std::uint64_t>(c)));
  return y;
}

void check_gradient(const Loss& loss, std::int64_t n, std::int64_t c,
                    std::uint64_t seed) {
  TensorF p = random_probs(n, c, seed);
  LabelMap y = random_labels(n, c, seed + 1);
  TensorF grad(p.shape());
  loss.compute(p, y, grad);
  util::Rng pick(seed + 2);
  const float h = 1e-4f;
  TensorF scratch(p.shape());
  for (int k = 0; k < 6; ++k) {
    const std::int64_t idx = static_cast<std::int64_t>(
        pick.uniform_index(static_cast<std::uint64_t>(p.numel())));
    const float orig = p[idx];
    p[idx] = orig + h;
    const double lp = loss.compute(p, y, scratch);
    p[idx] = orig - h;
    const double lm = loss.compute(p, y, scratch);
    p[idx] = orig;
    const double num = (lp - lm) / (2.0 * h);
    EXPECT_NEAR(grad[idx], num, 1e-3 * (std::fabs(num) + std::fabs(grad[idx]) + 1.0))
        << loss.name() << " idx " << idx;
  }
}

TEST(CrossEntropy, PerfectPredictionNearZero) {
  TensorF p(Shape{2, 3}, 0.f);
  LabelMap y(Shape{2});
  y[0] = 1; y[1] = 2;
  p[0 * 3 + 1] = 1.f;
  p[1 * 3 + 2] = 1.f;
  CrossEntropyLoss ce;
  TensorF g(p.shape());
  EXPECT_NEAR(ce.compute(p, y, g), 0.0, 1e-6);
}

TEST(CrossEntropy, UniformPredictionIsLogC) {
  const std::int64_t c = 4;
  TensorF p(Shape{5, c}, 1.f / c);
  LabelMap y = random_labels(5, c, 3);
  CrossEntropyLoss ce;
  TensorF g(p.shape());
  EXPECT_NEAR(ce.compute(p, y, g), std::log(static_cast<double>(c)), 1e-5);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  check_gradient(CrossEntropyLoss{}, 12, 4, 5);
}

TEST(Dice, PerfectPredictionNearZero) {
  const std::int64_t n = 16, c = 3;
  LabelMap y = random_labels(n, c, 7);
  TensorF p(Shape{n, c}, 0.f);
  for (std::int64_t i = 0; i < n; ++i) p[i * c + y[i]] = 1.f;
  DiceLoss dice;
  TensorF g(p.shape());
  EXPECT_LT(dice.compute(p, y, g), 0.05);  // only the smooth term remains
}

TEST(Dice, WrongPredictionNearOne) {
  const std::int64_t n = 64, c = 2;
  LabelMap y(Shape{n}, 0);
  TensorF p(Shape{n, c}, 0.f);
  for (std::int64_t i = 0; i < n; ++i) p[i * c + 1] = 1.f;  // all wrong
  DiceLoss dice;
  TensorF g(p.shape());
  EXPECT_GT(dice.compute(p, y, g), 0.8);
}

TEST(Dice, GradientMatchesFiniteDifference) {
  check_gradient(DiceLoss{}, 10, 3, 11);
}

TEST(FocalTversky, PerfectPredictionNearZero) {
  const std::int64_t n = 32, c = 3;
  LabelMap y = random_labels(n, c, 13);
  TensorF p(Shape{n, c}, 0.f);
  for (std::int64_t i = 0; i < n; ++i) p[i * c + y[i]] = 1.f;
  auto ftl = FocalTverskyLoss::unweighted(c);
  TensorF g(p.shape());
  EXPECT_LT(ftl.compute(p, y, g), 1e-3);
}

TEST(FocalTversky, GradientMatchesFiniteDifference) {
  FocalTverskyLoss ftl(0.7f, 0.3f, 4.f / 3.f, {0.4f, 1.2f, 2.5f});
  check_gradient(ftl, 14, 3, 17);
}

TEST(FocalTversky, AlphaPenalizesFalseNegatives) {
  // One class present; prediction misses half of it (FN) vs hallucinates the
  // same amount elsewhere (FP). With alpha(0.7) > beta(0.3), FN costs more.
  const std::int64_t n = 40;
  LabelMap y(Shape{n}, 0);
  for (std::int64_t i = 0; i < 20; ++i) y[i] = 1;

  TensorF fn_case(Shape{n, 2}, 0.f);
  for (std::int64_t i = 0; i < n; ++i) {
    // predict class 1 only on first 10 (misses 10 -> FN), rest background
    const bool pred1 = i < 10;
    fn_case[i * 2 + (pred1 ? 1 : 0)] = 1.f;
  }
  TensorF fp_case(Shape{n, 2}, 0.f);
  for (std::int64_t i = 0; i < n; ++i) {
    // predict class 1 on all 20 true + 10 extra (FP)
    const bool pred1 = i < 30;
    fp_case[i * 2 + (pred1 ? 1 : 0)] = 1.f;
  }
  FocalTverskyLoss ftl(0.7f, 0.3f, 1.f, {0.f, 1.f});  // isolate class 1
  TensorF g(fn_case.shape());
  const double loss_fn = ftl.compute(fn_case, y, g);
  const double loss_fp = ftl.compute(fp_case, y, g);
  EXPECT_GT(loss_fn, loss_fp);
}

TEST(FocalTversky, GammaFocusesLoss) {
  // For the same moderately-bad prediction, gamma > 1 shrinks the loss
  // (since 1-S < 1) but grows the relative gradient on hard examples.
  const std::int64_t n = 20, c = 2;
  LabelMap y = random_labels(n, c, 19);
  TensorF p = random_probs(n, c, 23);
  TensorF g(p.shape());
  FocalTverskyLoss flat(0.7f, 0.3f, 1.f, {1.f, 1.f});
  FocalTverskyLoss focused(0.7f, 0.3f, 4.f / 3.f, {1.f, 1.f});
  const double l1 = flat.compute(p, y, g);
  const double l2 = focused.compute(p, y, g);
  EXPECT_NEAR(l2, std::pow(l1, 4.0 / 3.0), 1e-6);
}

TEST(FocalTversky, InverseFrequencyWeightsOrdering) {
  // Table I frequencies: rarer organ -> strictly larger weight.
  auto ftl = FocalTverskyLoss::inverse_frequency(
      {12.0, 0.2218, 0.0251, 0.3417, 0.0470, 0.3626});
  const auto& w = ftl.class_weights();
  EXPECT_LT(w[0], w[1]);          // background lightest
  EXPECT_GT(w[2], w[1]);          // bladder > liver
  EXPECT_GT(w[2], w[3]);          // bladder > lungs
  EXPECT_GT(w[4], w[5]);          // kidneys > bones
  double sum = 0.0;
  for (float v : w) sum += v;
  EXPECT_NEAR(sum, 6.0, 1e-3);    // normalized to C
}

TEST(FocalTversky, WeightsSteerLossTowardWeightedClass) {
  const std::int64_t n = 30;
  LabelMap y(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) y[i] = (i < 15) ? 0 : 1;
  // class 1 predicted badly, class 0 predicted well
  TensorF p(Shape{n, 2}, 0.f);
  for (std::int64_t i = 0; i < n; ++i) p[i * 2 + 0] = 1.f;
  TensorF g(p.shape());
  FocalTverskyLoss w0(0.7f, 0.3f, 1.f, {1.f, 0.1f});
  FocalTverskyLoss w1(0.7f, 0.3f, 1.f, {0.1f, 1.f});
  EXPECT_GT(w1.compute(p, y, g), w0.compute(p, y, g));
}

TEST(FocalTversky, MismatchedWeightCountThrows) {
  FocalTverskyLoss ftl(0.7f, 0.3f, 1.f, {1.f, 1.f});
  TensorF p = random_probs(4, 3, 29);
  LabelMap y = random_labels(4, 3, 31);
  TensorF g(p.shape());
  EXPECT_THROW(ftl.compute(p, y, g), std::invalid_argument);
}

TEST(Combined, IsWeightedSum) {
  std::vector<std::unique_ptr<Loss>> parts;
  parts.push_back(std::make_unique<CrossEntropyLoss>());
  parts.push_back(std::make_unique<DiceLoss>());
  CombinedLoss combo(std::move(parts), {1.0, 0.5});

  TensorF p = random_probs(8, 3, 37);
  LabelMap y = random_labels(8, 3, 41);
  TensorF g(p.shape());
  const double total = combo.compute(p, y, g);

  CrossEntropyLoss ce;
  DiceLoss dice;
  TensorF g1(p.shape()), g2(p.shape());
  const double expect = ce.compute(p, y, g1) + 0.5 * dice.compute(p, y, g2);
  EXPECT_NEAR(total, expect, 1e-9);
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    EXPECT_NEAR(g[i], g1[i] + 0.5f * g2[i], 1e-6);
  }
}

TEST(Combined, GradientMatchesFiniteDifference) {
  std::vector<std::unique_ptr<Loss>> parts;
  parts.push_back(std::make_unique<FocalTverskyLoss>(
      FocalTverskyLoss::unweighted(3)));
  parts.push_back(std::make_unique<CrossEntropyLoss>());
  CombinedLoss combo(std::move(parts), {1.0, 0.3});
  check_gradient(combo, 10, 3, 43);
}

TEST(Combined, MakeSenecaLossRuns) {
  auto loss = make_seneca_loss({12.0, 0.22, 0.025, 0.34, 0.047, 0.36});
  TensorF p = random_probs(6, 6, 47);
  LabelMap y = random_labels(6, 6, 53);
  TensorF g(p.shape());
  EXPECT_GT(loss->compute(p, y, g), 0.0);
}

}  // namespace
}  // namespace seneca::nn
