// XModel v2 deserializer hostility suite: the .xmodel file is the artifact
// that crosses machines (compile-once/deploy-many, SENECA-Wire shipping),
// so corrupted or adversarial bytes must produce a descriptive
// std::runtime_error — never a crash, hang, or unbounded allocation. The
// main sweep is a 4000-iteration seeded byte-mutation fuzz mirroring the
// wire-frame suite; targeted tests pin the count-field allocation guards.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "dpu/compiler.hpp"
#include "dpu/verify.hpp"
#include "dpu/xmodel.hpp"
#include "util/rng.hpp"

namespace seneca::dpu {
namespace {

XModel compiled(int opt_level) {
  CompileOptions opts;
  opts.model_name = "1M";
  opts.opt_level = opt_level;
  return compile(core::build_timing_qgraph("1M", 64), opts);
}

/// Overwrites the little-endian u64 at `pos` in-place.
void patch_u64(std::vector<std::uint8_t>& buf, std::size_t pos,
               std::uint64_t v) {
  ASSERT_LE(pos + 8, buf.size());
  for (int i = 0; i < 8; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

TEST(XModelWire, SerializeDeserializeRoundTripsByteExactly) {
  const XModel m = compiled(1);
  const std::vector<std::uint8_t> bytes = m.serialize();
  const XModel back = XModel::deserialize(bytes);
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.name, m.name);
  EXPECT_EQ(back.layers.size(), m.layers.size());
  EXPECT_TRUE(verify(back).empty());
}

TEST(XModelWire, BadMagicIsDescriptive) {
  try {
    XModel::deserialize({'j', 'u', 'n', 'k'});
    FAIL() << "decoded junk";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("xmodel"), std::string::npos);
  }
}

TEST(XModelWire, HugeBiasCountRejectedBeforeAllocation) {
  // The file ends with [u64 wn][wn bytes][u64 bn][bn*4 bytes]; patch each
  // trailing count to ~2^63 and require an immediate descriptive reject —
  // a missing guard here would try to allocate exabytes (and bn*4 would
  // overflow to a small size, passing the read while resize() dies).
  const XModel m = compiled(0);
  const std::size_t bn = m.biases.size();
  {
    std::vector<std::uint8_t> buf = m.serialize();
    patch_u64(buf, buf.size() - 4 * bn - 8, 0x7FFFFFFFFFFFFFFFull);
    try {
      XModel::deserialize(buf);
      FAIL() << "decoded a huge bias count";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("bias count"), std::string::npos);
    }
  }
  {
    std::vector<std::uint8_t> buf = m.serialize();
    const std::size_t wn_pos = buf.size() - 4 * bn - 8 - m.weights.size() - 8;
    patch_u64(buf, wn_pos, 0xFFFFFFFFFFFFFFFFull);
    try {
      XModel::deserialize(buf);
      FAIL() << "decoded a huge weight count";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("weight count"), std::string::npos);
    }
  }
}

TEST(XModelWire, TruncatedPrefixesAlwaysThrow) {
  const std::vector<std::uint8_t> bytes = compiled(1).serialize();
  util::Rng rng(0x5ECA);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 256 && n < bytes.size(); ++n) lengths.push_back(n);
  for (int i = 0; i < 256; ++i) {
    lengths.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1)));
  }
  for (std::size_t n : lengths) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(XModel::deserialize(prefix), std::runtime_error)
        << "prefix of " << n << " bytes decoded";
  }
}

TEST(XModelWire, SeededMutationSweepNeverCrashes) {
  std::vector<std::vector<std::uint8_t>> corpus = {compiled(0).serialize(),
                                                   compiled(1).serialize()};
  util::Rng rng(0xA11CE);
  int decoded_ok = 0;
  int rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> buf =
        corpus[static_cast<std::size_t>(rng.uniform_index(corpus.size()))];
    const int n_mut = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < n_mut; ++m) {
      switch (rng.uniform_int(0, 3)) {
        case 0:  // flip a byte
          buf[static_cast<std::size_t>(rng.uniform_index(buf.size()))] ^=
              static_cast<std::uint8_t>(rng.uniform_int(1, 255));
          break;
        case 1:  // truncate
          buf.resize(static_cast<std::size_t>(rng.uniform_index(buf.size())));
          if (buf.empty()) buf.push_back(0);
          break;
        case 2:  // append garbage
          buf.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
          break;
        default: {  // overwrite a run with one value
          const auto at =
              static_cast<std::size_t>(rng.uniform_index(buf.size()));
          const auto len = std::min<std::size_t>(
              static_cast<std::size_t>(rng.uniform_int(1, 16)),
              buf.size() - at);
          std::memset(buf.data() + at,
                      static_cast<int>(rng.uniform_int(0, 255)), len);
          break;
        }
      }
    }
    try {
      const XModel m = XModel::deserialize(buf);
      // The mutation may have hit a don't-care byte (weight payloads, layer
      // names); a decoded model must then survive the full static verifier
      // without crashing — findings are fine, indexing faults are not.
      (void)verify(m);
      ++decoded_ok;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  // The sweep must exercise the reject paths heavily; if almost every
  // mutant decoded, the mutations weren't biting.
  EXPECT_GT(rejected, 2000) << "ok=" << decoded_ok;
}

}  // namespace
}  // namespace seneca::dpu
