// U-Net builder tests: shapes, parameter counts (Table II ratios),
// serialization round-trips including batch-norm running statistics.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/model_zoo.hpp"
#include "nn/unet.hpp"
#include "util/rng.hpp"

namespace seneca::nn {
namespace {

using tensor::Shape;
using tensor::TensorF;

TEST(UNet2D, OutputShapeIsProbabilityMaps) {
  UNet2DConfig cfg;
  cfg.input_size = 32;
  cfg.depth = 3;
  cfg.base_filters = 4;
  auto g = build_unet2d(cfg);
  TensorF x(Shape{32, 32, 1}, 0.1f);
  const TensorF& out = g->forward(x);
  EXPECT_EQ(out.shape(), (Shape{32, 32, 6}));
}

TEST(UNet2D, OutputIsNormalizedPerPixel) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto g = build_unet2d(cfg);
  util::Rng rng(5);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  const TensorF& out = g->forward(x);
  for (std::int64_t i = 0; i < 16 * 16; ++i) {
    float sum = 0.f;
    for (int c = 0; c < 6; ++c) sum += out[i * 6 + c];
    ASSERT_NEAR(sum, 1.f, 1e-5);
  }
}

TEST(UNet2D, IndivisibleInputThrows) {
  UNet2DConfig cfg;
  cfg.input_size = 20;  // not divisible by 2^4
  cfg.depth = 4;
  EXPECT_THROW(build_unet2d(cfg), std::invalid_argument);
}

TEST(UNet2D, LayersCountMatchesPaperNomenclature) {
  UNet2DConfig cfg;
  cfg.depth = 4;
  EXPECT_EQ(cfg.layers(), 9);
  cfg.depth = 5;
  EXPECT_EQ(cfg.layers(), 11);
}

TEST(UNet2D, DeterministicForSameSeed) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.seed = 77;
  auto a = build_unet2d(cfg);
  auto b = build_unet2d(cfg);
  TensorF x(Shape{16, 16, 1}, 0.3f);
  EXPECT_LT(tensor::max_abs_diff(a->forward(x), b->forward(x)), 1e-9);
}

TEST(UNet2D, SeedChangesInit) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.seed = 1;
  auto a = build_unet2d(cfg);
  cfg.seed = 2;
  auto b = build_unet2d(cfg);
  TensorF x(Shape{16, 16, 1}, 0.3f);
  EXPECT_GT(tensor::max_abs_diff(a->forward(x), b->forward(x)), 1e-6);
}

/// Table II parameter ratios: the paper's totals are 1.034/2.329/4.136/
/// 7.814/16.522 M, i.e. ratios 1 : 2.25 : 4.0 : 7.56 : 16.0 relative to the
/// 1M config. Our standard two-conv-per-stack builder reproduces those
/// ratios (the uniform absolute offset is documented in EXPERIMENTS.md).
TEST(UNet2D, ZooParameterRatiosMatchTableII) {
  std::vector<double> params;
  for (const auto& e : core::model_zoo()) {
    auto g = build_unet2d(core::unet_config(e, 64));
    params.push_back(static_cast<double>(g->num_parameters()));
  }
  ASSERT_EQ(params.size(), 5u);
  const double base = params[0];
  const double paper_base = core::model_zoo()[0].paper_params_millions;
  for (std::size_t i = 1; i < params.size(); ++i) {
    const double ours = params[i] / base;
    const double paper =
        core::model_zoo()[i].paper_params_millions / paper_base;
    EXPECT_NEAR(ours / paper, 1.0, 0.08) << core::model_zoo()[i].name;
  }
}

TEST(UNet2D, ParameterCountIndependentOfInputSize) {
  UNet2DConfig cfg;
  cfg.depth = 3;
  cfg.base_filters = 6;
  cfg.input_size = 32;
  auto a = build_unet2d(cfg);
  cfg.input_size = 64;
  auto b = build_unet2d(cfg);
  EXPECT_EQ(a->num_parameters(), b->num_parameters());
}

TEST(UNet2D, SaveLoadRoundTripIncludesRunningStats) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto g = build_unet2d(cfg);
  util::Rng rng(9);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  // a few training forwards move the BN running statistics
  for (int i = 0; i < 5; ++i) g->forward(x, true);
  const TensorF ref = g->forward(x, false);

  const auto path = std::filesystem::temp_directory_path() / "seneca_unet.w";
  g->save_weights(path);
  auto g2 = build_unet2d(cfg);
  for (Param* p : g2->params()) p->value.fill(0.123f);
  g2->load_weights(path);
  const TensorF out = g2->forward(x, false);
  EXPECT_LT(tensor::max_abs_diff(ref, out), 1e-6);
  std::filesystem::remove(path);
}

TEST(UNet2D, LoadRejectsWrongArchitecture) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto g = build_unet2d(cfg);
  const auto path = std::filesystem::temp_directory_path() / "seneca_unet2.w";
  g->save_weights(path);
  cfg.base_filters = 8;
  auto other = build_unet2d(cfg);
  EXPECT_THROW(other->load_weights(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(UNet3D, OutputShape) {
  UNet3DConfig cfg;
  cfg.depth_vox = 8;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto g = build_unet3d(cfg);
  TensorF x(Shape{8, 16, 16, 1}, 0.1f);
  const TensorF& out = g->forward(x);
  EXPECT_EQ(out.shape(), (Shape{8, 16, 16, 6}));
}

TEST(UNet3D, OutputNormalized) {
  UNet3DConfig cfg;
  cfg.depth_vox = 4;
  cfg.input_size = 8;
  cfg.depth = 1;
  cfg.base_filters = 4;
  auto g = build_unet3d(cfg);
  util::Rng rng(11);
  TensorF x(Shape{4, 8, 8, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  const TensorF& out = g->forward(x);
  for (std::int64_t i = 0; i < 4 * 8 * 8; ++i) {
    float sum = 0.f;
    for (int c = 0; c < 6; ++c) sum += out[i * 6 + c];
    ASSERT_NEAR(sum, 1.f, 1e-5);
  }
}

TEST(UNet3D, IndivisibleDimsThrow) {
  UNet3DConfig cfg;
  cfg.depth_vox = 6;  // not divisible by 2^2
  cfg.input_size = 16;
  cfg.depth = 2;
  EXPECT_THROW(build_unet3d(cfg), std::invalid_argument);
}

TEST(ModelZoo, HasFiveEntriesWithPaperLabels) {
  const auto& zoo = core::model_zoo();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].name, "1M");
  EXPECT_EQ(zoo[4].name, "16M");
  EXPECT_EQ(zoo[0].depth, 4);   // 9 layers
  EXPECT_EQ(zoo[1].depth, 5);   // 11 layers
  EXPECT_EQ(zoo[1].base_filters, 6);
  EXPECT_EQ(zoo[3].base_filters, 11);
}

TEST(ModelZoo, UnknownNameThrows) {
  EXPECT_THROW(core::zoo_entry("32M"), std::invalid_argument);
}

}  // namespace
}  // namespace seneca::nn
