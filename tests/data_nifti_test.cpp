// NIfTI-1 volume I/O tests: header layout, round trips at every supported
// bit width, CT-ORG-style export, malformed-input rejection.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/nifti.hpp"
#include "data/phantom.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace seneca::data {
namespace {

using tensor::Shape;

NiftiVolume make_volume(std::int64_t nz, std::int64_t ny, std::int64_t nx,
                        NiftiDataType type, std::uint64_t seed) {
  NiftiVolume vol;
  vol.stored_type = type;
  vol.voxels = tensor::TensorF(Shape{nz, ny, nx});
  util::Rng rng(seed);
  for (auto& v : vol.voxels) {
    v = static_cast<float>(rng.uniform_int(-1000, 1000));
  }
  vol.spacing_mm[0] = 1.5f;
  vol.spacing_mm[1] = 1.5f;
  vol.spacing_mm[2] = 5.0f;
  return vol;
}

class NiftiRoundTrip : public ::testing::TestWithParam<NiftiDataType> {};

TEST_P(NiftiRoundTrip, PreservesVoxelsAndGeometry) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_rt.nii";
  const NiftiVolume vol = make_volume(4, 6, 8, GetParam(), 3);
  write_nifti(path, vol);
  const NiftiVolume back = read_nifti(path);
  EXPECT_EQ(back.stored_type, GetParam());
  ASSERT_EQ(back.voxels.shape(), vol.voxels.shape());
  EXPECT_LT(tensor::max_abs_diff(back.voxels, vol.voxels), 0.5);
  EXPECT_FLOAT_EQ(back.spacing_mm[0], 1.5f);
  EXPECT_FLOAT_EQ(back.spacing_mm[2], 5.0f);
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, NiftiRoundTrip,
                         ::testing::Values(NiftiDataType::kInt16,
                                           NiftiDataType::kInt32,
                                           NiftiDataType::kFloat32));

TEST(Nifti, Float32ExactRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_f32.nii";
  NiftiVolume vol = make_volume(2, 3, 5, NiftiDataType::kFloat32, 7);
  vol.voxels[0] = 0.12345f;  // non-integral value survives only in float
  write_nifti(path, vol);
  const NiftiVolume back = read_nifti(path);
  EXPECT_FLOAT_EQ(back.voxels[0], 0.12345f);
  std::filesystem::remove(path);
}

TEST(Nifti, HeaderMagicAndSize) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_hdr.nii";
  write_nifti(path, make_volume(2, 2, 2, NiftiDataType::kInt16, 9));
  const auto bytes = util::read_file(path);
  // sizeof_hdr little-endian 348 at offset 0
  EXPECT_EQ(bytes[0], 348 - 256);
  EXPECT_EQ(bytes[1], 1);
  // magic "n+1\0" at offset 344
  EXPECT_EQ(bytes[344], 'n');
  EXPECT_EQ(bytes[345], '+');
  EXPECT_EQ(bytes[346], '1');
  // data offset 352: header + extension flag + 8 voxels * 2 bytes
  EXPECT_EQ(bytes.size(), 352u + 16u);
  std::filesystem::remove(path);
}

TEST(Nifti, DimensionsInHeader) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_dim.nii";
  write_nifti(path, make_volume(3, 5, 7, NiftiDataType::kInt16, 11));
  const auto bytes = util::read_file(path);
  // dim[] at offset 40: rank, nx, ny, nz (int16 LE)
  EXPECT_EQ(bytes[40], 3);  // rank
  EXPECT_EQ(bytes[42], 7);  // nx
  EXPECT_EQ(bytes[44], 5);  // ny
  EXPECT_EQ(bytes[46], 3);  // nz
  std::filesystem::remove(path);
}

TEST(Nifti, RejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_bad.nii";
  util::write_text_file(path, std::string(400, 'x'));
  EXPECT_THROW(read_nifti(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Nifti, RejectsTruncatedData) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_trunc.nii";
  write_nifti(path, make_volume(4, 4, 4, NiftiDataType::kInt32, 13));
  auto bytes = util::read_file(path);
  bytes.resize(bytes.size() - 32);
  util::write_file(path, bytes.data(), bytes.size());
  EXPECT_THROW(read_nifti(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Nifti, RejectsNon3D) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_4d.nii";
  write_nifti(path, make_volume(2, 2, 2, NiftiDataType::kInt16, 15));
  auto bytes = util::read_file(path);
  bytes[40] = 4;  // claim rank 4
  util::write_file(path, bytes.data(), bytes.size());
  EXPECT_THROW(read_nifti(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Nifti, CtOrgStyleExport) {
  PhantomConfig cfg;
  cfg.resolution = 32;
  cfg.slices_per_volume = 6;
  PhantomGenerator gen(cfg, 17);
  const PhantomVolume vol = gen.generate_volume(0);
  const auto stem = std::filesystem::temp_directory_path() / "seneca_case0";
  export_ctorg_style(stem, vol);

  const NiftiVolume ct = read_nifti(stem.string() + "_ct.nii");
  const NiftiVolume labels = read_nifti(stem.string() + "_labels.nii");
  EXPECT_EQ(ct.nz(), 6);
  EXPECT_EQ(ct.nx(), 32);
  EXPECT_EQ(labels.voxels.shape(), ct.voxels.shape());
  // HU stored as int16 must match the slice values after rounding
  EXPECT_NEAR(ct.voxels[100], std::round(vol.slices[0].image_hu[100]), 0.51);
  // labels are small non-negative integers
  for (std::int64_t i = 0; i < labels.voxels.numel(); ++i) {
    ASSERT_GE(labels.voxels[i], 0.f);
    ASSERT_LE(labels.voxels[i], 6.f);
  }
  std::filesystem::remove(stem.string() + "_ct.nii");
  std::filesystem::remove(stem.string() + "_labels.nii");
}

}  // namespace
}  // namespace seneca::data
