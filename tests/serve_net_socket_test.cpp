// Hardened socket layer: endpoint parsing, loopback TCP and unix-domain
// round-trips, and the failure paths the hardening exists for — a stalled
// peer must turn into NetError{kTimeout} (never a hang), a closed peer into
// NetError{kClosed} (never SIGPIPE), and a whole-operation deadline must
// hold even against a peer trickling one byte per poll interval.

#include <arpa/inet.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/net/socket.hpp"

namespace {

using namespace seneca::serve::net;

std::string test_unix_path(const char* tag) {
  return "/tmp/seneca-socktest-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

// --------------------------------------------------------------- Endpoint

TEST(Endpoint, ParsesTcp) {
  const Endpoint ep = Endpoint::parse("tcp:127.0.0.1:7070");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7070);
  EXPECT_EQ(ep.to_string(), "tcp:127.0.0.1:7070");
}

TEST(Endpoint, ParsesUnix) {
  const Endpoint ep = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  EXPECT_EQ(ep.to_string(), "unix:/tmp/x.sock");
}

TEST(Endpoint, RejectsGarbage) {
  EXPECT_THROW(Endpoint::parse(""), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("http:127.0.0.1:1"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:notaport"),
               std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:99999"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("unix:"), std::invalid_argument);
}

// ------------------------------------------------------------ round trips

void round_trip_over(const Endpoint& bind_ep) {
  Listener listener = Listener::bind(bind_ep);
  std::thread server([&] {
    Socket peer = listener.accept(2000.0);
    const Frame f = peer.read_frame(2000.0);
    peer.write_frame(f.type, f.payload, 2000.0);  // echo
  });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  client.write_frame(FrameType::kControl, payload, 2000.0);
  const Frame echo = client.read_frame(2000.0);
  server.join();
  EXPECT_EQ(echo.type, FrameType::kControl);
  EXPECT_EQ(echo.payload, payload);
}

TEST(Socket, TcpEphemeralPortRoundTrip) {
  // Port 0 bind: the listener must report the kernel-resolved port.
  Endpoint ep;
  ep.kind = Endpoint::Kind::kTcp;
  ep.port = 0;
  round_trip_over(ep);
}

TEST(Socket, UnixDomainRoundTrip) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = test_unix_path("rt");
  round_trip_over(ep);
  // Re-binding the same path must work (stale file unlinked on bind).
  round_trip_over(ep);
}

// ------------------------------------------------------------- timeouts

TEST(Socket, ConnectTimesOutAgainstFullBacklog) {
  // A listener with backlog 1 whose accept queue we saturate: the kernel
  // stops completing handshakes, so a further connect sits in SYN-SENT
  // until OUR deadline fires — the nonblocking-connect+poll path, not the
  // kernel's minutes-long default.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  Endpoint ep;
  ep.port = ntohs(addr.sin_port);

  // Fill the accept queue (backlog 1 tolerates a couple of completions).
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(cfd, 0);
    const int flags = ::fcntl(cfd, F_GETFL, 0);
    ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
    ::connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(cfd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  try {
    Socket s = Socket::connect(ep, 200.0);
    FAIL() << "connect against a saturated backlog unexpectedly completed";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetError::Kind::kTimeout);
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 2000.0) << "connect deadline not enforced";
  for (const int fd : fillers) ::close(fd);
  ::close(lfd);
}

TEST(Socket, ReadTimesOutAgainstStalledPeer) {
  // The peer accepts and then goes silent: the read must come back with
  // kTimeout in bounded time.
  Listener listener = Listener::bind(Endpoint{});
  std::thread server([&] {
    Socket peer = listener.accept(2000.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  std::uint8_t buf[4];
  try {
    client.read_exact(buf, sizeof(buf), 100.0);
    FAIL() << "read from a stalled peer unexpectedly returned";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetError::Kind::kTimeout);
  }
  server.join();
}

TEST(Socket, DeadlineCoversWholeReadNotPerByte) {
  // A peer trickling one byte at a time must NOT extend the deadline: 16
  // bytes at 50ms/byte is 800ms of trickle against a 150ms whole-read
  // deadline.
  Listener listener = Listener::bind(Endpoint{});
  std::thread server([&] {
    Socket peer = listener.accept(2000.0);
    const std::uint8_t b = 0x11;
    try {
      for (int i = 0; i < 16; ++i) {
        peer.write_all(&b, 1, 500.0);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    } catch (const NetError&) {
      // Client gave up and closed — expected.
    }
  });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  std::uint8_t buf[16];
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.read_exact(buf, sizeof(buf), 150.0), NetError);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 600.0) << "per-chunk deadline renewal detected";
  client.close();
  server.join();
}

TEST(Socket, ReadFrameDeadlineSpansHeaderAndPayload) {
  // Peer sends a valid header promising 64 payload bytes, then stalls.
  // read_frame must give up at its deadline instead of waiting forever for
  // the payload.
  Listener listener = Listener::bind(Endpoint{});
  std::thread server([&] {
    Socket peer = listener.accept(2000.0);
    FrameHeader h;
    h.type = FrameType::kRequest;
    h.payload_len = 64;
    std::uint8_t hdr[kHeaderSize];
    encode_header(h, hdr);
    peer.write_all(hdr, sizeof(hdr), 500.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  try {
    client.read_frame(120.0);
    FAIL() << "read_frame returned against a stalled payload";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetError::Kind::kTimeout);
  }
  server.join();
}

// --------------------------------------------------------- peer failures

TEST(Socket, ReadAgainstClosedPeerIsKClosed) {
  Listener listener = Listener::bind(Endpoint{});
  std::thread server([&] { Socket peer = listener.accept(2000.0); });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  server.join();  // peer socket destroyed -> FIN
  std::uint8_t buf[1];
  try {
    client.read_exact(buf, 1, 1000.0);
    FAIL() << "read from closed peer unexpectedly returned data";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetError::Kind::kClosed);
  }
}

TEST(Socket, WriteAgainstClosedPeerThrowsInsteadOfSigpipe) {
  // The classic SIGPIPE trap: write into a connection the peer already
  // closed. MSG_NOSIGNAL + SIG_IGN must turn that into NetError, not a
  // process kill (the test process dying IS the failure mode here).
  Listener listener = Listener::bind(Endpoint{});
  std::thread server([&] { Socket peer = listener.accept(2000.0); });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  server.join();
  const std::vector<std::uint8_t> chunk(4096, 0xEE);
  bool threw = false;
  try {
    // Keep writing until the RST lands; one write may succeed into the
    // kernel buffer before the failure is visible.
    for (int i = 0; i < 64 && !threw; ++i) {
      client.write_all(chunk.data(), chunk.size(), 500.0);
    }
  } catch (const NetError& e) {
    threw = true;
    EXPECT_NE(e.kind(), NetError::Kind::kTimeout);
  }
  EXPECT_TRUE(threw);
}

TEST(Socket, ShutdownWakesBlockedReader) {
  // shutdown_rw from another thread must unblock a reader parked in a long
  // poll — this is how RemoteBoard::shutdown reclaims its reader thread.
  Listener listener = Listener::bind(Endpoint{});
  std::thread server([&] {
    Socket peer = listener.accept(2000.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });
  Socket client = Socket::connect(listener.local_endpoint(), 2000.0);
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    client.shutdown_rw();
  });
  std::uint8_t buf[1];
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.read_exact(buf, 1, 5000.0), NetError);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 2000.0) << "reader was not woken by shutdown";
  unblocker.join();
  server.join();
}

TEST(Listener, AcceptTimesOutCleanly) {
  Listener listener = Listener::bind(Endpoint{});
  try {
    listener.accept(80.0);
    FAIL() << "accept with no client unexpectedly returned";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetError::Kind::kTimeout);
  }
}

}  // namespace
