// SENECA-Kernels property tests. The central invariant: every backend of
// the vectorized INT8 layer (generic int32, AVX2/NEON) is BIT-EXACT against
// the scalar int64 reference kernels in qgraph.cpp — across shapes, channel
// counts not divisible by the vector width, negative requant shifts (the
// left-shift path), ReLU on/off, and the int32-overflow fallback. Plus the
// reference-semantics bugfix pins: rounding-mode independence of
// quantize_tensor, odd-extent max-pool rejection, activation-capture
// aliasing, and arena recycling.
#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "dpu/compiler.hpp"
#include "dpu/core_sim.hpp"
#include "nn/unet.hpp"
#include "quant/kernels.hpp"
#include "quant/quantizer.hpp"
#include "tensor/arena.hpp"
#include "util/rng.hpp"

namespace seneca::quant {
namespace {

using tensor::Shape;
using tensor::TensorArena;
using tensor::TensorF;
using tensor::TensorI8;

TensorI8 random_i8(const Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 t(shape);
  for (auto& v : t) {
    // ~1/8 exact zeros so the xv==0 skip path is exercised.
    const int r = rng.uniform_int(-144, 127);
    v = static_cast<std::int8_t>(r < -128 ? 0 : r);
  }
  return t;
}

QOp make_op(QOpKind kind, std::int64_t k, std::int64_t ci, std::int64_t co,
            const Shape& out_shape, int fix_pos_w, int fix_pos_out, bool relu,
            std::uint64_t seed) {
  QOp op;
  op.kind = kind;
  op.name = "op";
  op.inputs = {0};
  op.out_shape = out_shape;
  op.fix_pos_out = fix_pos_out;
  op.fix_pos_w = fix_pos_w;
  op.kernel = k;
  op.relu = relu;
  op.weights = random_i8(Shape{k, k, ci, co}, seed * 31 + 1);
  util::Rng rng(seed * 31 + 2);
  op.bias.resize(static_cast<std::size_t>(co));
  for (auto& b : op.bias) {
    b = static_cast<std::int32_t>(rng.uniform_int(-5000, 5000));
  }
  return op;
}

::testing::AssertionResult same_tensor(const TensorI8& got,
                                       const TensorI8& want) {
  if (got.shape() != want.shape()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(got.data(), want.data(),
                  static_cast<std::size_t>(want.numel())) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    if (got[i] != want[i]) {
      return ::testing::AssertionFailure()
             << "first mismatch at flat index " << i << ": got "
             << static_cast<int>(got[i]) << ", want "
             << static_cast<int>(want[i]);
    }
  }
  return ::testing::AssertionFailure() << "unreachable";
}

/// Backends to check against the scalar reference.
std::vector<kernels::Backend> backends_under_test() {
  std::vector<kernels::Backend> v{kernels::Backend::kGeneric};
  if (kernels::simd_available()) v.push_back(kernels::Backend::kSimd);
  return v;
}

class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { kernels::set_backend(kernels::Backend::kAuto); }
};

// ------------------------------------------------ conv bit-exactness -----

TEST_F(KernelsTest, Conv2DBitExactAcrossBackends) {
  // Channel counts straddle the AVX2 (16-wide, 2-channel-paired) and NEON
  // (8-wide) vector widths: odd, prime, exact multiples, and multiples+1.
  const std::int64_t cis[] = {1, 2, 3, 5, 16, 17};
  const std::int64_t cos[] = {1, 3, 7, 8, 16, 17, 33};
  // fp_in + fp_w - fp_out: positive (right shift), zero, and negative (the
  // left-shift requant path).
  const int shifts[] = {4, 2, 0, -2};
  std::uint64_t seed = 1;
  for (std::int64_t ci : cis) {
    for (std::int64_t co : cos) {
      for (int shift : shifts) {
        for (int relu = 0; relu < 2; ++relu) {
          ++seed;
          const std::int64_t k = (seed % 2) ? 3 : 1;
          const std::int64_t h = 5, w = 4;
          const int fp_in = 4, fp_w = 3;
          QOp op = make_op(QOpKind::kConv2D, k, ci, co, Shape{h, w, co}, fp_w,
                           fp_in + fp_w - shift, relu != 0, seed);
          const TensorI8 x = random_i8(Shape{h, w, ci}, seed);
          TensorI8 ref(op.out_shape);
          qconv2d_forward(x, op, ref, fp_in);
          for (kernels::Backend b : backends_under_test()) {
            kernels::set_backend(b);
            TensorI8 got(op.out_shape);
            kernels::conv2d(x, op, got, fp_in);
            EXPECT_TRUE(same_tensor(got, ref))
                << "backend=" << kernels::backend_name(b) << " ci=" << ci
                << " co=" << co << " k=" << k << " shift=" << shift
                << " relu=" << relu;
          }
        }
      }
    }
  }
}

TEST_F(KernelsTest, TConv2DBitExactAcrossBackends) {
  const std::int64_t cis[] = {1, 3, 8, 17};
  const std::int64_t cos[] = {1, 5, 16, 33};
  const int shifts[] = {4, 0, -2};
  std::uint64_t seed = 1000;
  for (std::int64_t ci : cis) {
    for (std::int64_t co : cos) {
      for (int shift : shifts) {
        ++seed;
        const std::int64_t h = 3, w = 4, k = 3;
        const int fp_in = 4, fp_w = 3;
        QOp op = make_op(QOpKind::kTConv2D, k, ci, co, Shape{2 * h, 2 * w, co},
                         fp_w, fp_in + fp_w - shift, (seed % 2) != 0, seed);
        const TensorI8 x = random_i8(Shape{h, w, ci}, seed);
        TensorI8 ref(op.out_shape);
        qtconv2d_forward(x, op, ref, fp_in);
        for (kernels::Backend b : backends_under_test()) {
          kernels::set_backend(b);
          // Both with and without an arena-provided accumulator plane.
          TensorI8 got(op.out_shape);
          kernels::tconv2d(x, op, got, fp_in, nullptr);
          EXPECT_TRUE(same_tensor(got, ref))
              << "backend=" << kernels::backend_name(b) << " ci=" << ci
              << " co=" << co << " shift=" << shift << " (no arena)";
          TensorArena arena;
          TensorI8 got2(op.out_shape);
          kernels::tconv2d(x, op, got2, fp_in, &arena);
          EXPECT_TRUE(same_tensor(got2, ref))
              << "backend=" << kernels::backend_name(b) << " ci=" << ci
              << " co=" << co << " shift=" << shift << " (arena)";
        }
      }
    }
  }
}

TEST_F(KernelsTest, MaxPoolBitExactAcrossBackends) {
  const std::int64_t cs[] = {1, 3, 15, 16, 33, 48};
  std::uint64_t seed = 2000;
  for (std::int64_t c : cs) {
    ++seed;
    const std::int64_t h = 6, w = 8;
    const TensorI8 x = random_i8(Shape{h, w, c}, seed);
    TensorI8 ref(Shape{h / 2, w / 2, c});
    qmaxpool2d_forward(x, ref);
    for (kernels::Backend b : backends_under_test()) {
      kernels::set_backend(b);
      TensorI8 got(Shape{h / 2, w / 2, c});
      kernels::maxpool2d(x, got);
      EXPECT_TRUE(same_tensor(got, ref))
          << "backend=" << kernels::backend_name(b) << " c=" << c;
    }
  }
}

TEST_F(KernelsTest, ConcatBitExactAcrossBackends) {
  const std::int64_t cas[] = {1, 3, 16, 17};
  const int shifts[] = {-2, 0, 3};
  std::uint64_t seed = 3000;
  for (std::int64_t ca : cas) {
    for (int sa : shifts) {
      for (int sb : shifts) {
        ++seed;
        const std::int64_t h = 4, w = 5, cb = 7;
        const int fp_out = 4;
        const TensorI8 a = random_i8(Shape{h, w, ca}, seed);
        const TensorI8 b = random_i8(Shape{h, w, cb}, seed + 1);
        TensorI8 ref(Shape{h, w, ca + cb});
        qconcat_forward(a, fp_out + sa, b, fp_out + sb, ref, fp_out);
        for (kernels::Backend bk : backends_under_test()) {
          kernels::set_backend(bk);
          TensorI8 got(Shape{h, w, ca + cb});
          kernels::concat(a, fp_out + sa, b, fp_out + sb, got, fp_out);
          EXPECT_TRUE(same_tensor(got, ref))
              << "backend=" << kernels::backend_name(bk) << " ca=" << ca
              << " sa=" << sa << " sb=" << sb;
        }
      }
    }
  }
}

TEST_F(KernelsTest, RequantRowMatchesReferenceForAllShifts) {
  const std::int64_t n = 129;  // odd: exercises every vector tail
  const TensorI8 src = random_i8(Shape{n}, 99);
  for (int shift = -12; shift <= 12; ++shift) {
    std::vector<std::int8_t> ref(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ref[static_cast<std::size_t>(i)] =
          saturate_i8(rshift_round(src[i], shift));
    }
    for (kernels::Backend b : backends_under_test()) {
      kernels::set_backend(b);
      std::vector<std::int8_t> got(static_cast<std::size_t>(n));
      kernels::requant_row(src.data(), got.data(), n, shift);
      EXPECT_EQ(got, ref) << "backend=" << kernels::backend_name(b)
                          << " shift=" << shift;
    }
  }
}

// ------------------------------------------- int32-overflow fallback -----

TEST_F(KernelsTest, HugeBiasForcesExactScalarFallback) {
  const std::int64_t h = 4, w = 4, ci = 8, co = 16, k = 3;
  QOp op = make_op(QOpKind::kConv2D, k, ci, co, Shape{h, w, co}, 3, 5, false,
                   7);
  op.bias[3] = std::numeric_limits<std::int32_t>::max();
  EXPECT_FALSE(kernels::acc32_safe(op, ci));
  const TensorI8 x = random_i8(Shape{h, w, ci}, 7);
  TensorI8 ref(op.out_shape);
  qconv2d_forward(x, op, ref, 4);
  for (kernels::Backend b : backends_under_test()) {
    kernels::set_backend(b);
    TensorI8 got(op.out_shape);
    kernels::conv2d(x, op, got, 4);
    EXPECT_TRUE(same_tensor(got, ref))
        << "backend=" << kernels::backend_name(b);
  }
}

TEST_F(KernelsTest, ExtremeRequantShiftsStayExact) {
  // shift = fp_in + fp_w - fp_out: +40 and -25 are far outside the int32
  // requant envelope, so every backend must route to the int64 reference.
  const std::int64_t h = 3, w = 3, ci = 4, co = 16, k = 3;
  const TensorI8 x = random_i8(Shape{h, w, ci}, 11);
  for (int shift : {40, -25}) {
    QOp op = make_op(QOpKind::kConv2D, k, ci, co, Shape{h, w, co}, 20,
                     20 + 20 - shift, false, 11);
    TensorI8 ref(op.out_shape);
    qconv2d_forward(x, op, ref, 20);
    for (kernels::Backend b : backends_under_test()) {
      kernels::set_backend(b);
      TensorI8 got(op.out_shape);
      kernels::conv2d(x, op, got, 20);
      EXPECT_TRUE(same_tensor(got, ref))
          << "backend=" << kernels::backend_name(b) << " shift=" << shift;
    }
  }
}

// ------------------------------------------------- rounding unification --

TEST(Rounding, QuantizeTiesAwayFromZeroRegardlessOfFpMode) {
  // 0.25 at fix_pos 1 is the exact tie 0.5; half-away-from-zero gives 1.
  // std::nearbyint under the default FE_TONEAREST would give 0 (half-even)
  // and would flip with fesetround — the runtime's rshift_round never does.
  TensorF x(Shape{4});
  x[0] = 0.25f;
  x[1] = -0.25f;
  x[2] = 0.75f;
  x[3] = -0.75f;
  const int modes[] = {FE_TONEAREST, FE_UPWARD, FE_DOWNWARD, FE_TOWARDZERO};
  const int old_mode = std::fegetround();
  for (int mode : modes) {
    ASSERT_EQ(std::fesetround(mode), 0);
    const TensorI8 q = quantize_tensor(x, 1);
    EXPECT_EQ(q[0], 1) << "mode=" << mode;
    EXPECT_EQ(q[1], -1) << "mode=" << mode;
    EXPECT_EQ(q[2], 2) << "mode=" << mode;
    EXPECT_EQ(q[3], -2) << "mode=" << mode;
  }
  std::fesetround(old_mode);
}

TEST(Rounding, QuantizeMatchesRshiftRoundOnTies) {
  // quantize(v, 0) of integer-and-a-half values must agree with
  // rshift_round(2v, 1): both are the model's half-away-from-zero rule.
  for (int n = -10; n <= 10; ++n) {
    TensorF x(Shape{1});
    x[0] = static_cast<float>(n) + (n >= 0 ? 0.5f : -0.5f);
    const TensorI8 q = quantize_tensor(x, 0);
    const std::int64_t want =
        rshift_round(static_cast<std::int64_t>(std::llround(2.0 * x[0])), 1);
    EXPECT_EQ(q[0], saturate_i8(want)) << "value=" << x[0];
  }
}

// ------------------------------------------------ odd max-pool rejection --

TEST(OddPool, QuantizerRejectsOddPoolInput) {
  FGraph fg;
  fg.ops.resize(2);
  fg.ops[0].kind = OpKind::kInput;
  fg.ops[0].name = "input";
  fg.ops[0].out_shape = Shape{5, 6, 1};
  fg.ops[1].kind = OpKind::kMaxPool2D;
  fg.ops[1].name = "pool";
  fg.ops[1].inputs = {0};
  fg.ops[1].out_shape = Shape{2, 3, 1};
  fg.input_op = 0;
  fg.output_op = 1;
  std::vector<TensorF> calib;
  util::Rng rng(3);
  TensorF img(Shape{5, 6, 1});
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1, 1));
  calib.push_back(img);
  try {
    quantize(fg, calib);
    FAIL() << "quantize accepted an odd-extent max-pool input";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("drop the last row/column"),
              std::string::npos)
        << "unhelpful message: " << e.what();
  }
}

TEST(OddPool, CompilerRejectsOddPoolInput) {
  QGraph qg;
  qg.ops.resize(2);
  qg.ops[0].kind = QOpKind::kInput;
  qg.ops[0].name = "input";
  qg.ops[0].out_shape = Shape{6, 5, 3};
  qg.ops[0].fix_pos_out = 4;
  qg.ops[1].kind = QOpKind::kMaxPool2D;
  qg.ops[1].name = "pool";
  qg.ops[1].inputs = {0};
  qg.ops[1].out_shape = Shape{3, 2, 3};
  qg.ops[1].fix_pos_out = 4;
  qg.input_op = 0;
  qg.output_op = 1;
  qg.input_fix_pos = 4;
  qg.input_shape = Shape{6, 5, 3};
  try {
    dpu::compile(qg);
    FAIL() << "compile accepted an odd-extent max-pool input";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max-pool"), std::string::npos)
        << "unhelpful message: " << e.what();
  }
}

// ------------------------------------- end-to-end executors + the arena --

struct Built {
  QGraph qgraph;
  dpu::XModel xmodel;
  std::int64_t size = 0;
};

Built build_model(std::uint64_t seed, std::int64_t size) {
  nn::UNet2DConfig cfg;
  cfg.input_size = size;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  for (int i = 0; i < 3; ++i) {
    util::Rng rng(seed + 31 + static_cast<std::uint64_t>(i));
    TensorF x(Shape{size, size, 1});
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
    graph->forward(x, true);
  }
  FGraph fg = fold(*graph);
  std::vector<TensorF> calib;
  util::Rng rng(seed + 77);
  TensorF img(Shape{size, size, 1});
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1, 1));
  calib.push_back(img);
  Built b;
  b.qgraph = quantize(fg, calib);
  b.xmodel = dpu::compile(b.qgraph);
  b.size = size;
  return b;
}

TensorI8 random_input(std::int64_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{size, size, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

TEST_F(KernelsTest, QGraphForwardBitExactAcrossBackendsEndToEnd) {
  const Built b = build_model(5, 16);
  const TensorI8 x = random_input(b.size, 9);
  kernels::set_backend(kernels::Backend::kScalar);
  const TensorI8 ref = b.qgraph.forward(x);
  for (kernels::Backend bk : backends_under_test()) {
    kernels::set_backend(bk);
    const TensorI8 got = b.qgraph.forward(x);
    EXPECT_TRUE(same_tensor(got, ref))
        << "backend=" << kernels::backend_name(bk);
  }
}

TEST_F(KernelsTest, ActivationCaptureStaysCompleteAndAliasesNothing) {
  const Built b = build_model(6, 16);
  const TensorI8 x = random_input(b.size, 10);
  TensorArena arena;
  for (TensorArena* arena_ptr : {static_cast<TensorArena*>(nullptr), &arena}) {
    std::vector<TensorI8> acts;
    const TensorI8 out = b.qgraph.forward(x, &acts, arena_ptr);
    ASSERT_EQ(acts.size(), b.qgraph.ops.size());
    // The capture must include the network input and the output op's slot,
    // byte-identical to the tensors the caller holds.
    EXPECT_TRUE(same_tensor(
        acts[static_cast<std::size_t>(b.qgraph.input_op)], x));
    EXPECT_TRUE(same_tensor(
        acts[static_cast<std::size_t>(b.qgraph.output_op)], out));
    // And they are copies, not aliases of the caller's storage.
    EXPECT_NE(acts[static_cast<std::size_t>(b.qgraph.input_op)].data(),
              x.data());
    EXPECT_NE(acts[static_cast<std::size_t>(b.qgraph.output_op)].data(),
              out.data());
  }
}

TEST_F(KernelsTest, ArenaReachesAllocationSteadyState) {
  const Built b = build_model(7, 16);
  TensorArena arena;
  const TensorI8 x0 = random_input(b.size, 20);
  const TensorI8 ref0 = b.qgraph.forward(x0);  // no arena
  const TensorI8 got0 = b.qgraph.forward(x0, nullptr, &arena);
  EXPECT_TRUE(same_tensor(got0, ref0));
  const std::size_t after_first = arena.mallocs();
  EXPECT_GT(after_first, 0u);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    const TensorI8 xi = random_input(b.size, 20 + i);
    const TensorI8 goti = b.qgraph.forward(xi, nullptr, &arena);
    EXPECT_TRUE(same_tensor(goti, b.qgraph.forward(xi)));
  }
  // Steady state: only the escaping output tensor can cost a fresh slab,
  // so at most one allocation per subsequent frame.
  EXPECT_LE(arena.mallocs(), after_first + 4);
}

TEST_F(KernelsTest, CoreSimBitExactWithArenaAcrossFrames) {
  const Built b = build_model(8, 16);
  const dpu::DpuCoreSim sim(&b.xmodel);
  TensorArena arena;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const TensorI8 x = random_input(b.size, 40 + i);
    kernels::set_backend(kernels::Backend::kScalar);
    const TensorI8 ref = b.qgraph.forward(x);
    kernels::set_backend(kernels::Backend::kAuto);
    const dpu::RunResult plain = sim.run(x);
    const dpu::RunResult pooled = sim.run(x, 1, &arena);
    EXPECT_TRUE(same_tensor(plain.output, ref)) << "frame " << i;
    EXPECT_TRUE(same_tensor(pooled.output, ref)) << "frame " << i << " arena";
  }
  const std::size_t after_warm = arena.mallocs();
  const TensorI8 x = random_input(b.size, 50);
  (void)sim.run(x, 1, &arena);
  (void)sim.run(x, 1, &arena);
  EXPECT_LE(arena.mallocs(), after_warm + 2);
}

}  // namespace
}  // namespace seneca::quant
