// Pre-processing pipeline tests (§III-A): downsampling, percentile
// saturation, [-1,1] rescaling, brain-label removal.
#include <gtest/gtest.h>

#include "data/preprocess.hpp"

namespace seneca::data {
namespace {

using tensor::Shape;
using tensor::TensorF;

TEST(Downsample, BoxFilterAverages) {
  TensorF img(Shape{2, 2, 1});
  img[0] = 1.f; img[1] = 2.f; img[2] = 3.f; img[3] = 6.f;
  const TensorF out = downsample2x(img);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 3.f);
}

TEST(Downsample, HalvesShape) {
  TensorF img(Shape{512, 512, 1}, 1.f);
  const TensorF out = downsample2x(img);
  EXPECT_EQ(out.shape(), (Shape{256, 256, 1}));
  EXPECT_FLOAT_EQ(out[1000], 1.f);
}

TEST(Downsample, OddDimsThrow) {
  TensorF img(Shape{3, 4, 1});
  EXPECT_THROW(downsample2x(img), std::invalid_argument);
}

TEST(Downsample, LabelsUseTopLeftPick) {
  LabelMap labels(Shape{2, 2});
  labels[0] = 5; labels[1] = 1; labels[2] = 2; labels[3] = 3;
  const LabelMap out = downsample2x_labels(labels);
  EXPECT_EQ(out.shape(), (Shape{1, 1}));
  EXPECT_EQ(out[0], 5);
}

TEST(Saturate, ClampsTails) {
  TensorF img(Shape{100, 1, 1});
  for (std::int64_t i = 0; i < 100; ++i) img[i] = static_cast<float>(i);
  const auto [lo, hi] = saturate_percentiles(img, 2.0);
  EXPECT_NEAR(lo, 2.0f, 1.1f);
  EXPECT_NEAR(hi, 97.0f, 1.1f);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_GE(img[i], lo);
    EXPECT_LE(img[i], hi);
  }
}

TEST(Saturate, InteriorValuesUntouched) {
  TensorF img(Shape{100, 1, 1});
  for (std::int64_t i = 0; i < 100; ++i) img[i] = static_cast<float>(i);
  saturate_percentiles(img, 1.0);
  EXPECT_FLOAT_EQ(img[50], 50.f);
}

TEST(Rescale, MapsToUnitRange) {
  TensorF img(Shape{3});
  img[0] = 10.f; img[1] = 15.f; img[2] = 20.f;
  rescale_to_unit(img, 10.f, 20.f);
  EXPECT_NEAR(img[0], -1.f, 1e-6);
  EXPECT_NEAR(img[1], 0.f, 1e-6);
  EXPECT_NEAR(img[2], 1.f, 1e-6);
}

TEST(Rescale, DegenerateRangeZeros) {
  TensorF img(Shape{2}, 5.f);
  rescale_to_unit(img, 5.f, 5.f);
  EXPECT_FLOAT_EQ(img[0], 0.f);
}

TEST(BrainRemoval, RelabelsToBackground) {
  LabelMap labels(Shape{4});
  labels[0] = static_cast<std::int32_t>(Organ::kBrain);
  labels[1] = static_cast<std::int32_t>(Organ::kLiver);
  labels[2] = static_cast<std::int32_t>(Organ::kBrain);
  labels[3] = 0;
  remove_brain_label(labels);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], static_cast<std::int32_t>(Organ::kLiver));
  EXPECT_EQ(labels[2], 0);
}

TEST(Pipeline, Produces256From512) {
  PhantomConfig cfg;
  cfg.resolution = 512;
  PhantomGenerator gen(cfg, 3);
  const PhantomSlice slice = gen.render_slice(0, 0.5);
  const nn::Sample sample = preprocess_slice(slice);
  EXPECT_EQ(sample.image.shape(), (Shape{256, 256, 1}));
  EXPECT_EQ(sample.labels.shape(), (Shape{256, 256}));
}

TEST(Pipeline, OutputInUnitRange) {
  PhantomConfig cfg;
  cfg.resolution = 128;
  PhantomGenerator gen(cfg, 5);
  const nn::Sample sample = preprocess_slice(gen.render_slice(0, 0.4));
  for (std::int64_t i = 0; i < sample.image.numel(); ++i) {
    ASSERT_GE(sample.image[i], -1.f);
    ASSERT_LE(sample.image[i], 1.f);
  }
}

TEST(Pipeline, NoBrainLabelsSurvive) {
  PhantomConfig cfg;
  cfg.resolution = 96;
  PhantomGenerator gen(cfg, 7);
  // whole-body head slice: raw labels contain brain
  const PhantomSlice raw = gen.render_slice(0, 0.04);
  bool had_brain = false;
  for (std::int64_t i = 0; i < raw.labels.numel(); ++i) {
    had_brain |= raw.labels[i] == static_cast<std::int32_t>(Organ::kBrain);
  }
  ASSERT_TRUE(had_brain);
  const nn::Sample sample = preprocess_slice(raw);
  for (std::int64_t i = 0; i < sample.labels.numel(); ++i) {
    ASSERT_LT(sample.labels[i], static_cast<std::int32_t>(Organ::kBrain));
  }
}

TEST(Pipeline, LungsDarkAfterRescale) {
  PhantomConfig cfg;
  cfg.resolution = 96;
  PhantomGenerator gen(cfg, 9);
  const PhantomSlice raw = gen.render_slice(0, 0.3);
  const nn::Sample sample = preprocess_slice(raw);
  double lung_mean = 0;
  std::int64_t n = 0;
  for (std::int64_t i = 0; i < sample.labels.numel(); ++i) {
    if (sample.labels[i] == static_cast<std::int32_t>(Organ::kLungs)) {
      lung_mean += sample.image[i];
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(lung_mean / static_cast<double>(n), -0.4);
}

}  // namespace
}  // namespace seneca::data
