// Dataset assembly + calibration sampler tests: patient-level splits,
// frequency analysis, and the Table III manual sampling behaviour.
#include <gtest/gtest.h>

#include <set>

#include "data/calibration.hpp"
#include "data/dataset.hpp"

namespace seneca::data {
namespace {

DatasetConfig small_config() {
  DatasetConfig cfg;
  cfg.num_volumes = 20;
  cfg.slices_per_volume = 10;
  cfg.resolution = 64;
  return cfg;
}

TEST(Dataset, SplitSizes) {
  const Dataset ds = build_dataset(small_config());
  EXPECT_EQ(ds.train.size(), 14u * 10u);
  EXPECT_EQ(ds.val.size(), 2u * 10u);
  EXPECT_EQ(ds.test.size(), 4u * 10u);
}

TEST(Dataset, PatientsDoNotStraddleSplits) {
  const Dataset ds = build_dataset(small_config());
  std::set<int> train_p, val_p, test_p;
  for (const auto& r : ds.train) train_p.insert(r.patient_id);
  for (const auto& r : ds.val) val_p.insert(r.patient_id);
  for (const auto& r : ds.test) test_p.insert(r.patient_id);
  for (int p : train_p) {
    EXPECT_EQ(val_p.count(p), 0u);
    EXPECT_EQ(test_p.count(p), 0u);
  }
  for (int p : val_p) EXPECT_EQ(test_p.count(p), 0u);
}

TEST(Dataset, Deterministic) {
  const Dataset a = build_dataset(small_config());
  const Dataset b = build_dataset(small_config());
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_LT(tensor::max_abs_diff(a.train[0].sample.image,
                                 b.train[0].sample.image), 1e-9);
}

TEST(Dataset, SeedChangesSplit) {
  DatasetConfig cfg = small_config();
  const Dataset a = build_dataset(cfg);
  cfg.seed = 999;
  const Dataset b = build_dataset(cfg);
  std::set<int> pa, pb;
  for (const auto& r : a.train) pa.insert(r.patient_id);
  for (const auto& r : b.train) pb.insert(r.patient_id);
  EXPECT_NE(pa, pb);
}

TEST(Dataset, SamplesCarryConsistentShapes) {
  const Dataset ds = build_dataset(small_config());
  for (const auto& r : ds.train) {
    ASSERT_EQ(r.sample.image.shape(), (tensor::Shape{64, 64, 1}));
    ASSERT_EQ(r.sample.labels.shape(), (tensor::Shape{64, 64}));
  }
}

TEST(OrganFrequencies, SumTo100OverOrgans) {
  const Dataset ds = build_dataset(small_config());
  const auto freq = organ_frequencies(ds.train);
  double sum = 0.0;
  for (std::size_t c = 1; c < freq.size(); ++c) sum += freq[c];
  EXPECT_NEAR(sum, 100.0, 1e-6);
  EXPECT_EQ(freq[static_cast<std::size_t>(Organ::kBrain)], 0.0);  // removed
}

TEST(OrganFrequencies, EmptyLabelsGiveZeros) {
  LabelMap empty(tensor::Shape{4, 4}, 0);
  const auto freq = organ_frequencies(std::vector<const LabelMap*>{&empty});
  for (double f : freq) EXPECT_EQ(f, 0.0);
}

TEST(Calibration, RandomSamplerSizeAndDeterminism) {
  const Dataset ds = build_dataset(small_config());
  const auto a = sample_calibration_random(ds.train, 20, 5);
  const auto b = sample_calibration_random(ds.train, 20, 5);
  ASSERT_EQ(a.images.size(), 20u);
  EXPECT_LT(tensor::max_abs_diff(a.images[0], b.images[0]), 1e-9);
}

TEST(Calibration, RandomSamplerSeedMatters) {
  const Dataset ds = build_dataset(small_config());
  const auto a = sample_calibration_random(ds.train, 10, 1);
  const auto b = sample_calibration_random(ds.train, 10, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    diff += tensor::max_abs_diff(a.images[i], b.images[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Calibration, SizeCappedAtPool) {
  const Dataset ds = build_dataset(small_config());
  const auto set = sample_calibration_random(ds.train, 100000, 3);
  EXPECT_EQ(set.images.size(), ds.train.size());
}

TEST(Calibration, EmptyPoolThrows) {
  EXPECT_THROW(sample_calibration_random({}, 5, 1), std::invalid_argument);
  EXPECT_THROW(sample_calibration_manual({}, 5), std::invalid_argument);
}

/// Table III: the manual sampler must shift the organ distribution toward
/// the target — bladder and kidneys up, the big organs down — relative to
/// random sampling.
TEST(Calibration, ManualSamplingLevelsFrequencies) {
  DatasetConfig cfg = small_config();
  cfg.num_volumes = 30;
  const Dataset ds = build_dataset(cfg);
  const auto random_set = sample_calibration_random(ds.train, 60, 7);
  const auto manual_set = sample_calibration_manual(ds.train, 60);

  // Relative distance to the Table III target distribution (rare organs
  // weigh as much as abundant ones, matching the sampler's objective).
  auto rel_l1 = [](const std::array<double, 5>& f) {
    double d = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      d += std::fabs(f[i] - kManualTargetFrequencies[i]) /
           kManualTargetFrequencies[i];
    }
    return d;
  };
  EXPECT_LT(rel_l1(manual_set.frequencies), rel_l1(random_set.frequencies));
  // bladder (the rarest organ) boosted toward the target
  EXPECT_GT(manual_set.frequencies[1], random_set.frequencies[1]);
}

TEST(Calibration, ManualSetHasRequestedSize) {
  const Dataset ds = build_dataset(small_config());
  const auto set = sample_calibration_manual(ds.train, 25);
  EXPECT_EQ(set.images.size(), 25u);
}

TEST(Calibration, ImagesArePreprocessed) {
  const Dataset ds = build_dataset(small_config());
  const auto set = sample_calibration_random(ds.train, 5, 9);
  for (const auto& img : set.images) {
    EXPECT_EQ(img.shape(), (tensor::Shape{64, 64, 1}));
    EXPECT_LE(tensor::max_abs(img), 1.f + 1e-6f);
  }
}

}  // namespace
}  // namespace seneca::data
