// SENECA-Wire frame layer: round-trips for every payload schema, then the
// hostile half — truncated headers, oversized lengths, bad magic/version,
// flipped payload bits, trailing garbage, and a seeded byte-mutation sweep.
// The decoder contract: any malformed input throws FrameError; it never
// crashes, hangs, or allocates unbounded memory (ASan/UBSan CI bites here).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/net/frame.hpp"
#include "util/rng.hpp"

namespace {

using namespace seneca;
using namespace seneca::serve::net;

tensor::TensorI8 make_tensor(std::int64_t h, std::int64_t w, std::int64_t c) {
  tensor::TensorI8 t(tensor::Shape{h, w, c});
  std::int8_t v = -5;
  for (auto& x : t) x = v++;
  return t;
}

// ---------------------------------------------------------------- headers

TEST(WireHeader, RoundTrip) {
  FrameHeader h;
  h.type = FrameType::kTelemetry;
  h.payload_len = 12345;
  h.payload_crc = 0xDEADBEEF;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  const FrameHeader d = decode_header(buf);
  EXPECT_EQ(d.version, kWireVersion);
  EXPECT_EQ(d.type, FrameType::kTelemetry);
  EXPECT_EQ(d.payload_len, 12345u);
  EXPECT_EQ(d.payload_crc, 0xDEADBEEFu);
}

TEST(WireHeader, RejectsBadMagic) {
  FrameHeader h;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  buf[0] ^= 0xFF;
  EXPECT_THROW(decode_header(buf), FrameError);
}

TEST(WireHeader, RejectsBadVersion) {
  FrameHeader h;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  buf[4] = kWireVersion + 1;
  EXPECT_THROW(decode_header(buf), FrameError);
}

TEST(WireHeader, RejectsUnknownFrameType) {
  FrameHeader h;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  buf[5] = 0;  // below kHello
  EXPECT_THROW(decode_header(buf), FrameError);
  buf[5] = 200;  // above kGoodbye
  EXPECT_THROW(decode_header(buf), FrameError);
}

TEST(WireHeader, RejectsNonzeroReserved) {
  FrameHeader h;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  buf[6] = 1;
  EXPECT_THROW(decode_header(buf), FrameError);
}

TEST(WireHeader, RejectsOversizedPayloadLength) {
  // A corrupt length field must be rejected BEFORE any allocation happens:
  // the declared length below would be a 4 GiB buffer.
  FrameHeader h;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  buf[8] = buf[9] = buf[10] = buf[11] = 0xFF;
  EXPECT_THROW(decode_header(buf), FrameError);
}

// ----------------------------------------------------------------- frames

TEST(WireFrame, RoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251};
  const std::vector<std::uint8_t> buf =
      encode_frame(FrameType::kControl, payload);
  ASSERT_EQ(buf.size(), kHeaderSize + payload.size());
  const Frame f = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(f.type, FrameType::kControl);
  EXPECT_EQ(f.payload, payload);
}

TEST(WireFrame, RejectsTruncation) {
  const std::vector<std::uint8_t> buf =
      encode_frame(FrameType::kHeartbeat, WireHeartbeat{42}.encode());
  // Every strict prefix must fail cleanly — header cut short, payload cut
  // short, all of it.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_THROW(decode_frame(buf.data(), n), FrameError) << "prefix " << n;
  }
}

TEST(WireFrame, RejectsTrailingBytes) {
  std::vector<std::uint8_t> buf =
      encode_frame(FrameType::kHeartbeat, WireHeartbeat{7}.encode());
  buf.push_back(0xAB);
  EXPECT_THROW(decode_frame(buf.data(), buf.size()), FrameError);
}

TEST(WireFrame, RejectsPayloadBitFlip) {
  const std::vector<std::uint8_t> payload(64, 0x5A);
  std::vector<std::uint8_t> buf = encode_frame(FrameType::kRequest, payload);
  buf[kHeaderSize + 10] ^= 0x01;  // single flipped bit in the payload
  EXPECT_THROW(decode_frame(buf.data(), buf.size()), FrameError);
}

TEST(WireFrame, Crc32KnownVector) {
  // The classic zlib check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

// --------------------------------------------------------------- payloads

TEST(WirePayload, HelloRoundTrip) {
  WireHello h;
  h.name = "zcu104-a";
  h.rung_offset = 2;
  h.queue_capacity = 48;
  h.rungs.push_back({"8M", 0.033, 9.5, 0.31});
  h.rungs.push_back({"2M", 0.009, 8.0, 0.07});
  const WireHello d = WireHello::decode(h.encode());
  EXPECT_EQ(d.name, "zcu104-a");
  EXPECT_EQ(d.rung_offset, 2);
  EXPECT_EQ(d.queue_capacity, 48u);
  ASSERT_EQ(d.rungs.size(), 2u);
  EXPECT_EQ(d.rungs[1].model, "2M");
  EXPECT_DOUBLE_EQ(d.rungs[0].seconds_per_frame, 0.033);
  EXPECT_DOUBLE_EQ(d.rungs[1].watts, 8.0);
}

TEST(WirePayload, RequestRoundTripPreservesTensor) {
  WireRequest r;
  r.corr_id = 77;
  r.priority = serve::Priority::kInteractive;
  r.tenant = 3;
  r.deadline_rel_ms = 150.5;
  r.input = make_tensor(4, 4, 2);
  const WireRequest d = WireRequest::decode(r.encode());
  EXPECT_EQ(d.corr_id, 77u);
  EXPECT_EQ(d.priority, serve::Priority::kInteractive);
  EXPECT_EQ(d.tenant, 3u);
  EXPECT_DOUBLE_EQ(d.deadline_rel_ms, 150.5);
  ASSERT_EQ(d.input.shape(), r.input.shape());
  EXPECT_EQ(0, std::memcmp(d.input.data(), r.input.data(),
                           static_cast<std::size_t>(r.input.numel())));
}

TEST(WirePayload, ResponseRoundTrip) {
  WireResponse r;
  r.corr_id = 9001;
  r.status = serve::Status::kOk;
  r.degraded = true;
  r.batch_size = 4;
  r.served_seq = 12;
  r.queue_ms = 1.5;
  r.service_ms = 8.25;
  r.total_ms = 9.75;
  r.model_used = "4M";
  r.has_output = true;
  r.output = make_tensor(2, 2, 1);
  const WireResponse d = WireResponse::decode(r.encode());
  EXPECT_EQ(d.corr_id, 9001u);
  EXPECT_EQ(d.status, serve::Status::kOk);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.batch_size, 4u);
  EXPECT_EQ(d.model_used, "4M");
  ASSERT_TRUE(d.has_output);
  EXPECT_EQ(d.output.shape(), r.output.shape());
}

TEST(WirePayload, ResponseWithoutOutputHasNoTensorBytes) {
  WireResponse r;
  r.status = serve::Status::kMigrated;
  const std::vector<std::uint8_t> enc = r.encode();
  const WireResponse d = WireResponse::decode(enc);
  EXPECT_EQ(d.status, serve::Status::kMigrated);
  EXPECT_FALSE(d.has_output);
  EXPECT_EQ(d.output.numel(), 0);
}

TEST(WirePayload, TelemetryRoundTrip) {
  WireTelemetry t;
  t.seq = 5;
  t.submitted = 100;
  t.served = 90;
  t.migrated = 3;
  t.queue_depth = 7;
  t.level = 1;
  t.fault = true;
  t.runner_saturated = true;
  t.ewma_latency_ms = 12.5;
  t.frames_served = 88;
  t.energy_joules = 3.25;
  t.busy_seconds = 0.5;
  t.rungs.push_back({0.02, 0.2, 1.5});
  const WireTelemetry d = WireTelemetry::decode(t.encode());
  EXPECT_EQ(d.seq, 5u);
  EXPECT_EQ(d.submitted, 100u);
  EXPECT_EQ(d.migrated, 3u);
  EXPECT_EQ(d.level, 1);
  EXPECT_TRUE(d.fault);
  EXPECT_TRUE(d.runner_saturated);
  ASSERT_EQ(d.rungs.size(), 1u);
  EXPECT_DOUBLE_EQ(d.rungs[0].occupancy, 1.5);
}

TEST(WirePayload, ControlRoundTrip) {
  for (auto op : {WireControl::Op::kEvictQueued, WireControl::Op::kFaultOn,
                  WireControl::Op::kFaultOff, WireControl::Op::kShutdown}) {
    const WireControl d = WireControl::decode(WireControl{op}.encode());
    EXPECT_EQ(d.op, op);
  }
}

TEST(WirePayload, ControlRejectsUnknownOp) {
  WireWriter w;
  w.u8(99);
  EXPECT_THROW(WireControl::decode(w.take()), FrameError);
}

TEST(WirePayload, RejectsTruncatedPayloads) {
  WireRequest r;
  r.input = make_tensor(3, 3, 1);
  const std::vector<std::uint8_t> full = r.encode();
  for (std::size_t n = 0; n < full.size(); ++n) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<long>(n));
    EXPECT_THROW(WireRequest::decode(cut), FrameError) << "prefix " << n;
  }
}

TEST(WirePayload, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> enc = WireHeartbeat{1}.encode();
  enc.push_back(0);
  EXPECT_THROW(WireHeartbeat::decode(enc), FrameError);
}

TEST(WirePayload, StringLengthCapEnforced) {
  // A declared string length far past the buffer must throw before any
  // attempt to read (or allocate) that much.
  WireWriter w;
  w.u32(0xFFFFFFFFu);
  EXPECT_THROW(WireHello::decode(w.take()), FrameError);
}

TEST(WirePayload, TensorDimAndNumelCapsEnforced) {
  {
    WireWriter w;  // rank 12 > cap
    w.u64(1);      // corr_id
    w.u8(0);       // priority
    w.u32(0);      // tenant
    w.f64(0.0);    // deadline
    w.u8(12);
    EXPECT_THROW(WireRequest::decode(w.take()), FrameError);
  }
  {
    WireWriter w;  // dims whose product overflows the numel cap
    w.u64(1);
    w.u8(0);
    w.u32(0);
    w.f64(0.0);
    w.u8(3);
    w.i64(1 << 20);
    w.i64(1 << 20);
    w.i64(1 << 20);
    EXPECT_THROW(WireRequest::decode(w.take()), FrameError);
  }
}

// --------------------------------------------------------- mutation sweep

// Seeded corruption sweep: take valid frames of every type, smash them with
// random byte mutations / truncations / extensions, and require that decode
// either succeeds (mutation may hit a don't-care or cancel out in CRC-free
// fields — impossible here since CRC covers the payload, but harmless) or
// throws FrameError. Anything else — crash, hang, other exception — fails.
TEST(WireFuzz, SeededMutationSweepNeverCrashes) {
  std::vector<std::vector<std::uint8_t>> corpus;
  {
    WireHello h;
    h.name = "b";
    h.rungs.push_back({"4M", 0.01, 9.0, 0.09});
    corpus.push_back(encode_frame(FrameType::kHello, h.encode()));
    WireRequest r;
    r.input = make_tensor(4, 4, 1);
    corpus.push_back(encode_frame(FrameType::kRequest, r.encode()));
    WireResponse resp;
    resp.has_output = true;
    resp.output = make_tensor(2, 2, 1);
    corpus.push_back(encode_frame(FrameType::kResponse, resp.encode()));
    corpus.push_back(
        encode_frame(FrameType::kHeartbeat, WireHeartbeat{3}.encode()));
    WireTelemetry t;
    t.rungs.push_back({0.01, 0.1, 1.0});
    corpus.push_back(encode_frame(FrameType::kTelemetry, t.encode()));
    corpus.push_back(encode_frame(
        FrameType::kControl, WireControl{WireControl::Op::kFaultOn}.encode()));
    corpus.push_back(encode_frame(FrameType::kGoodbye, {}));
  }

  util::Rng rng(0xF4A2);
  int decoded_ok = 0;
  int rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> buf =
        corpus[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(corpus.size()) - 1))];
    const int n_mut = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < n_mut; ++m) {
      switch (rng.uniform_int(0, 3)) {
        case 0:  // flip a byte
          if (!buf.empty()) {
            buf[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(buf.size()) - 1))] ^=
                static_cast<std::uint8_t>(rng.uniform_int(1, 255));
          }
          break;
        case 1:  // truncate
          if (!buf.empty()) {
            buf.resize(static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(buf.size()) - 1)));
          }
          break;
        case 2:  // append garbage
          buf.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
          break;
        default:  // overwrite a run with one value
          if (!buf.empty()) {
            const auto at = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(buf.size()) - 1));
            const auto len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniform_int(1, 16)),
                buf.size() - at);
            std::memset(buf.data() + at,
                        static_cast<int>(rng.uniform_int(0, 255)), len);
          }
          break;
      }
    }
    try {
      const Frame f = decode_frame(buf.data(), buf.size());
      // Frame-level CRC passed; payload decode must ALSO hold the contract.
      switch (f.type) {
        case FrameType::kHello: WireHello::decode(f.payload); break;
        case FrameType::kRequest: WireRequest::decode(f.payload); break;
        case FrameType::kResponse: WireResponse::decode(f.payload); break;
        case FrameType::kHeartbeat: WireHeartbeat::decode(f.payload); break;
        case FrameType::kTelemetry: WireTelemetry::decode(f.payload); break;
        case FrameType::kControl: WireControl::decode(f.payload); break;
        case FrameType::kGoodbye: break;
      }
      ++decoded_ok;
    } catch (const FrameError&) {
      ++rejected;
    }
  }
  // The sweep must have exercised the reject paths heavily; a sweep where
  // almost everything decoded means the mutations weren't biting.
  EXPECT_GT(rejected, 3000) << "ok=" << decoded_ok;
}

}  // namespace
