// DPU core simulator tests. The central property is BIT-EXACTNESS: the
// functional core model must produce byte-identical outputs to the
// quantized reference executor (quant::QGraph), across seeds/sizes
// (parameterized) and across an xmodel save/load round trip.
#include <gtest/gtest.h>

#include <filesystem>

#include "dpu/compiler.hpp"
#include "dpu/core_sim.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace seneca::dpu {
namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

struct Built {
  quant::QGraph qgraph;
  XModel xmodel;
  std::int64_t size;
};

Built build(std::uint64_t seed, std::int64_t size, int depth,
            std::int64_t filters) {
  nn::UNet2DConfig cfg;
  cfg.input_size = size;
  cfg.depth = depth;
  cfg.base_filters = filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  for (int i = 0; i < 3; ++i) {
    util::Rng rng(seed + 31 + static_cast<std::uint64_t>(i));
    TensorF x(Shape{size, size, 1});
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
    graph->forward(x, true);
  }
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib;
  util::Rng rng(seed + 77);
  TensorF img(Shape{size, size, 1});
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1, 1));
  calib.push_back(img);
  Built b;
  b.qgraph = quant::quantize(fg, calib);
  b.xmodel = compile(b.qgraph);
  b.size = size;
  return b;
}

TensorI8 random_input(std::int64_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{size, size, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

class BitExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitExactness, CoreSimMatchesQGraphReference) {
  const std::uint64_t seed = GetParam();
  const Built b = build(seed, 16, 2, 4);
  DpuCoreSim core(&b.xmodel);
  for (int trial = 0; trial < 3; ++trial) {
    const TensorI8 input = random_input(16, seed * 100 + static_cast<std::uint64_t>(trial));
    const TensorI8 ref = b.qgraph.forward(input);
    const RunResult result = core.run(input);
    ASSERT_EQ(result.output.shape(), ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(result.output[i], ref[i]) << "seed " << seed << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitExactness,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class BitExactnessShapes
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int, std::int64_t>> {};

TEST_P(BitExactnessShapes, AcrossSizesAndDepths) {
  const auto [size, depth, filters] = GetParam();
  const Built b = build(99, size, depth, filters);
  DpuCoreSim core(&b.xmodel);
  const TensorI8 input = random_input(size, 4242);
  const TensorI8 ref = b.qgraph.forward(input);
  const RunResult result = core.run(input);
  ASSERT_EQ(tensor::max_abs_diff(result.output, ref), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitExactnessShapes,
    ::testing::Values(std::make_tuple(16, 2, 4), std::make_tuple(32, 2, 4),
                      std::make_tuple(16, 2, 6), std::make_tuple(32, 3, 4),
                      std::make_tuple(64, 4, 4)));

TEST(CoreSim, BitExactAfterXmodelRoundTrip) {
  const Built b = build(7, 16, 2, 4);
  const auto path = std::filesystem::temp_directory_path() / "rt.xmodel";
  b.xmodel.save(path);
  const XModel loaded = XModel::load(path);
  DpuCoreSim original(&b.xmodel);
  DpuCoreSim reloaded(&loaded);
  const TensorI8 input = random_input(16, 31415);
  EXPECT_EQ(tensor::max_abs_diff(original.run(input).output,
                                 reloaded.run(input).output), 0.0);
  std::filesystem::remove(path);
}

TEST(CoreSim, RejectsWrongInputShape) {
  const Built b = build(11, 16, 2, 4);
  DpuCoreSim core(&b.xmodel);
  EXPECT_THROW(core.run(random_input(32, 1)), std::invalid_argument);
}

TEST(CoreSim, ReportsLatency) {
  const Built b = build(13, 16, 2, 4);
  DpuCoreSim core(&b.xmodel);
  const RunResult r1 = core.run(random_input(16, 5), 1);
  const RunResult r2 = core.run(random_input(16, 5), 2);
  EXPECT_GT(r1.cycles, 0.0);
  EXPECT_LT(r1.cycles, r2.cycles);
  EXPECT_NEAR(r1.seconds, r1.cycles / (b.xmodel.arch.clock_mhz * 1e6), 1e-12);
}

TEST(CoreSim, DeterministicAcrossRuns) {
  const Built b = build(17, 16, 2, 4);
  DpuCoreSim core(&b.xmodel);
  const TensorI8 input = random_input(16, 9);
  EXPECT_EQ(tensor::max_abs_diff(core.run(input).output,
                                 core.run(input).output), 0.0);
}

TEST(CoreSim, OutputShapeIsLogitMaps) {
  const Built b = build(19, 32, 2, 4);
  DpuCoreSim core(&b.xmodel);
  const RunResult r = core.run(random_input(32, 10));
  EXPECT_EQ(r.output.shape(), (Shape{32, 32, 6}));
}

}  // namespace
}  // namespace seneca::dpu
