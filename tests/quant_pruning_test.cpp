// Structured-pruning tests: shape/channel bookkeeping through skips, output
// preservation when removing provably-dead filters, MAC/weight accounting,
// and composition with quantization + DPU compilation.
#include <gtest/gtest.h>

#include "dpu/compiler.hpp"
#include "dpu/core_sim.hpp"
#include "nn/unet.hpp"
#include "quant/pruning.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace seneca::quant {
namespace {

using tensor::Shape;
using tensor::TensorF;

FGraph tiny_fgraph(std::uint64_t seed = 5, std::int64_t filters = 8) {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  return fold(*graph);
}

TensorF random_input(std::uint64_t seed) {
  util::Rng rng(seed);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  return x;
}

TEST(Pruning, FractionZeroIsIdentity) {
  const FGraph fg = tiny_fgraph();
  PruneOptions opts;
  opts.fraction = 0.0;
  const FGraph pruned = prune(fg, opts);
  const TensorF x = random_input(9);
  EXPECT_LT(tensor::max_abs_diff(fg.forward(x), pruned.forward(x)), 1e-6);
}

TEST(Pruning, RemovingZeroFiltersPreservesOutputExactly) {
  FGraph fg = tiny_fgraph(7);
  // Zero out half the filters of the first encoder conv by hand: pruning
  // must pick exactly those and leave the function unchanged.
  for (auto& op : fg.ops) {
    if (op.name != "enc0_a_conv") continue;
    const std::int64_t co = op.out_shape[2];
    for (std::int64_t i = 0; i < op.weights.numel(); ++i) {
      if (i % co >= co / 2) op.weights[i] = 0.f;
    }
    for (std::int64_t c = co / 2; c < co; ++c) op.bias[c] = 0.f;
  }
  // Prune only lightly so exactly the dead filters of that layer can go.
  PruneOptions opts;
  opts.fraction = 0.0;  // identity elsewhere
  const FGraph base = prune(fg, opts);
  const TensorF x = random_input(11);
  const TensorF ref = base.forward(x);
  // Now prune 50% — the zeroed filters have the lowest L1 by construction.
  opts.fraction = 0.5;
  opts.min_filters = 1;
  const FGraph pruned = prune(fg, opts);
  // enc0_a's dead filters contribute nothing downstream; but pruning also
  // removes live filters in other layers, so compare only the first layer's
  // effect: re-prune with a graph where ONLY enc0_a is prunable is not
  // expressible — instead check output change is purely from other layers
  // by verifying enc0_a kept exactly the non-zero filters.
  for (const auto& op : pruned.ops) {
    if (op.name != "enc0_a_conv") continue;
    EXPECT_EQ(op.out_shape[2], fg.ops[1].out_shape[2] / 2);
    // surviving weights are the non-zeroed (lower-index) filters
    EXPECT_GT(tensor::max_abs(op.weights), 0.f);
  }
  EXPECT_EQ(ref.shape(), pruned.forward(x).shape());
}

TEST(Pruning, OutputShapeKeepsClassMaps) {
  const FGraph fg = tiny_fgraph();
  PruneOptions opts;
  opts.fraction = 0.4;
  const FGraph pruned = prune(fg, opts);
  const TensorF out = pruned.forward(random_input(13));
  EXPECT_EQ(out.shape(), (Shape{16, 16, 6}));  // head never pruned
}

TEST(Pruning, ReportsReductions) {
  const FGraph fg = tiny_fgraph();
  PruneOptions opts;
  opts.fraction = 0.5;
  opts.min_filters = 1;
  PruneReport report;
  prune(fg, opts, &report);
  EXPECT_GT(report.weight_reduction(), 0.5);  // quadratic in channel count
  EXPECT_GT(report.mac_reduction(), 0.5);
  EXPECT_LT(report.weights_after, report.weights_before);
}

TEST(Pruning, MinFiltersFloorRespected) {
  const FGraph fg = tiny_fgraph(5, 4);
  PruneOptions opts;
  opts.fraction = 0.95;
  opts.min_filters = 2;
  const FGraph pruned = prune(fg, opts);
  for (std::size_t i = 0; i < pruned.ops.size(); ++i) {
    const auto& op = pruned.ops[i];
    if (op.kind != OpKind::kConv2D && op.kind != OpKind::kTConv2D) continue;
    EXPECT_GE(op.out_shape[2], 2) << op.name;
  }
}

TEST(Pruning, InvalidFractionThrows) {
  const FGraph fg = tiny_fgraph();
  PruneOptions opts;
  opts.fraction = 1.0;
  EXPECT_THROW(prune(fg, opts), std::invalid_argument);
  opts.fraction = -0.1;
  EXPECT_THROW(prune(fg, opts), std::invalid_argument);
}

TEST(Pruning, ConcatChannelBookkeepingConsistent) {
  const FGraph fg = tiny_fgraph();
  PruneOptions opts;
  opts.fraction = 0.25;
  const FGraph pruned = prune(fg, opts);
  for (const auto& op : pruned.ops) {
    if (op.kind != OpKind::kConcat) continue;
    const auto& a = pruned.ops[static_cast<std::size_t>(op.inputs[0])];
    const auto& b = pruned.ops[static_cast<std::size_t>(op.inputs[1])];
    EXPECT_EQ(op.out_shape[2], a.out_shape[2] + b.out_shape[2]);
  }
  // consumer conv weights must match their (pruned) input channel counts
  for (const auto& op : pruned.ops) {
    if (op.kind != OpKind::kConv2D && op.kind != OpKind::kTConv2D) continue;
    const auto& in = pruned.ops[static_cast<std::size_t>(op.inputs[0])];
    EXPECT_EQ(op.weights.shape()[2], in.out_shape[2]) << op.name;
  }
}

TEST(Pruning, ComposesWithQuantizationAndCompilation) {
  const FGraph fg = tiny_fgraph(21);
  PruneOptions opts;
  opts.fraction = 0.25;
  const FGraph pruned = prune(fg, opts);
  std::vector<TensorF> calib{random_input(23)};
  const QGraph qg = quantize(pruned, calib);
  const dpu::XModel xm = dpu::compile(qg);
  const dpu::XModel full = dpu::compile(quantize(fg, calib));
  EXPECT_LT(xm.total_macs(), full.total_macs());
  // still executable end to end
  dpu::DpuCoreSim core(&xm);
  const auto out = core.run(quantize_input(qg, calib[0]));
  EXPECT_EQ(out.output.shape(), (Shape{16, 16, 6}));
}

TEST(Pruning, DpuSpeedupWhenCrossingLaneBoundaries) {
  // Lane quantization means pruning only buys DPU cycles when channel
  // counts cross an ICP/OCP group boundary: halving 32-channel layers to 16
  // halves the group count, whereas trimming 8 to 6 does not. Pin both.
  const FGraph fg = tiny_fgraph(31, 32);  // channels 32/64/128
  std::vector<TensorF> calib{random_input(33)};
  const dpu::XModel full = dpu::compile(quantize(fg, calib));
  PruneOptions opts;
  opts.fraction = 0.5;
  opts.min_filters = 1;
  const dpu::XModel half = dpu::compile(quantize(prune(fg, opts), calib));
  // Compare hybrid-array compute cycles: at this miniature input size the
  // fixed per-job and per-instruction overheads dominate end-to-end latency
  // and would mask the effect (itself a finding: pruning pays off on large
  // feature maps, not on dispatch-bound tiny ones).
  auto compute_cycles = [](const dpu::XModel& m) {
    double c = 0.0;
    for (const auto& l : m.layers) c += l.compute_cycles;
    return c;
  };
  EXPECT_LT(compute_cycles(half), 0.5 * compute_cycles(full));

  const FGraph small = tiny_fgraph(35, 8);
  opts.fraction = 0.25;  // 8 -> 6: same single lane group
  const dpu::XModel small_full = dpu::compile(quantize(small, calib));
  const dpu::XModel small_pruned =
      dpu::compile(quantize(prune(small, opts), calib));
  // compute cycles are identical; only memory traffic moves a little
  EXPECT_NEAR(small_pruned.latency_cycles(2) / small_full.latency_cycles(2),
              1.0, 0.1);
}

TEST(Pruning, FgraphMacsAnalytic) {
  // single conv 16x16, k=3, 1->4: 16*16*9*1*4
  const FGraph fg = tiny_fgraph(3, 4);
  EXPECT_GT(fgraph_macs(fg), 16 * 16 * 9 * 1 * 4);
}

}  // namespace
}  // namespace seneca::quant
