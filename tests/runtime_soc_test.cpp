// soc_sim latency-percentile edge cases: the p99 index math
// (0.99 * (n - 1)) must behave at the boundaries — zero samples, a single
// sample, and all-equal latencies.
#include <gtest/gtest.h>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "runtime/soc_sim.hpp"
#include "util/rng.hpp"

namespace seneca::runtime {
namespace {

using tensor::Shape;
using tensor::TensorF;

dpu::XModel build_model() {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.seed = 3;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(4);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TEST(SocSim, ZeroImagesYieldsEmptyReportWithoutCrashing) {
  const dpu::XModel xm = build_model();
  const SocConfig soc;
  const ThroughputReport r = simulate_throughput(xm, soc, 2, 0);
  EXPECT_EQ(r.images, 0);
  EXPECT_DOUBLE_EQ(r.fps, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_p99_ms, 0.0);
}

TEST(SocSim, SingleImageP99EqualsItsOnlyLatency) {
  const dpu::XModel xm = build_model();
  const SocConfig soc;
  const ThroughputReport r = simulate_throughput(xm, soc, 1, 1);
  EXPECT_GT(r.latency_mean_ms, 0.0);
  // One sample: index 0.99 * (1 - 1) = 0 -> p99 is that sample == the mean.
  EXPECT_DOUBLE_EQ(r.latency_p99_ms, r.latency_mean_ms);
}

TEST(SocSim, AllEqualLatenciesMakeP99EqualTheMean) {
  const dpu::XModel xm = build_model();
  const SocConfig soc;
  // One thread => no pipeline overlap or contention: every image walks the
  // identical preprocess -> DPU -> postprocess path, so all latencies match.
  const ThroughputReport r = simulate_throughput(xm, soc, 1, 7);
  EXPECT_GT(r.latency_p99_ms, 0.0);
  EXPECT_NEAR(r.latency_p99_ms, r.latency_mean_ms, 1e-9);
}

TEST(SocSim, P99NeverBelowMeanUnderContention) {
  const dpu::XModel xm = build_model();
  const SocConfig soc;
  const ThroughputReport r = simulate_throughput(xm, soc, 4, 32);
  EXPECT_GT(r.fps, 0.0);
  EXPECT_GE(r.latency_p99_ms, r.latency_mean_ms - 1e-9);
}

}  // namespace
}  // namespace seneca::runtime
