#!/bin/sh
# Smoke test: -DSENECA_SANITIZE=thread must configure cleanly and build one
# real target with -fsanitize=thread actually reaching the compiler.
# Registered with ctest as `sanitize_smoke` (label: tooling).
set -eu

SRC=${1:?usage: sanitize_smoke_test.sh <source-root> <build-dir>}
BUILD=${2:?usage: sanitize_smoke_test.sh <source-root> <build-dir>}

cmake -B "$BUILD" -S "$SRC" \
  -DSENECA_SANITIZE=thread \
  -DSENECA_BUILD_TESTS=OFF \
  -DSENECA_BUILD_BENCH=OFF \
  -DSENECA_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD" --target seneca_util -j >/dev/null

# The flag must be on the compile lines (Makefile or Ninja generator).
if ! grep -q -- "-fsanitize=thread" \
    "$BUILD/src/util/CMakeFiles/seneca_util.dir/flags.make" 2>/dev/null \
  && ! grep -q -- "-fsanitize=thread" "$BUILD/build.ninja" 2>/dev/null; then
  echo "FAIL: -fsanitize=thread not found in generated compile flags" >&2
  exit 1
fi

# And the archive must exist.
if [ ! -f "$BUILD/src/util/libseneca_util.a" ]; then
  echo "FAIL: libseneca_util.a was not built" >&2
  exit 1
fi

echo "sanitize_smoke_test: TSan configure+build OK"
