// Cross-module integration tests: the full SENECA pipeline at miniature
// scale, checking the paper's *qualitative* claims end-to-end — INT8 tracks
// FP32 accuracy, the DPU path is consistent through the VART runtime, the
// GPU-vs-FPGA throughput/efficiency ordering holds, and quantization
// preserves the prediction structure.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/evaluate.hpp"
#include "core/model_zoo.hpp"
#include "core/workflow.hpp"
#include "platform/gpu_model.hpp"
#include "platform/power.hpp"
#include "quant/quantizer.hpp"
#include "runtime/soc_sim.hpp"
#include "runtime/vart.hpp"

namespace seneca {
namespace {

/// One shared miniature workflow (trained once per test binary run).
class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = std::filesystem::temp_directory_path() / "seneca_integration";
    std::filesystem::remove_all(dir_);
    core::WorkflowConfig cfg;
    cfg.dataset.num_volumes = 10;
    cfg.dataset.slices_per_volume = 8;
    cfg.dataset.resolution = 32;
    cfg.model_name = "1M";
    cfg.train.epochs = 6;
    cfg.train.learning_rate = 2e-3f;
    cfg.train.lr_decay = 0.9f;
    cfg.calibration_images = 12;
    cfg.artifacts_dir = dir_;
    art_ = new core::WorkflowArtifacts(core::Workflow(cfg).run());
  }
  static void TearDownTestSuite() {
    delete art_;
    art_ = nullptr;
    std::filesystem::remove_all(dir_);
  }

  static core::WorkflowArtifacts* art_;
  static std::filesystem::path dir_;
};

core::WorkflowArtifacts* IntegrationFixture::art_ = nullptr;
std::filesystem::path IntegrationFixture::dir_;

TEST_F(IntegrationFixture, TrainingLearnedSomething) {
  auto ev = core::evaluate_fp32(*art_->fp32, art_->dataset.test);
  // even 6 tiny epochs must beat chance on the easy classes
  EXPECT_GT(ev.dice_per_class()[0], 0.5);  // background
  EXPECT_GT(ev.global_tnr(), 0.8);
}

TEST_F(IntegrationFixture, Int8TracksFp32GlobalDice) {
  auto ev32 = core::evaluate_fp32(*art_->fp32, art_->dataset.test);
  auto ev8 = core::evaluate_int8(art_->xmodel, art_->dataset.test);
  // §III-D: PTQ quantizes "with no global performance losses" — allow a
  // small absolute gap at this miniature scale.
  EXPECT_NEAR(ev8.global_dice(), ev32.global_dice(), 0.08);
}

TEST_F(IntegrationFixture, Int8PixelAgreementWithFp32High) {
  dpu::DpuCoreSim core(&art_->xmodel);
  std::int64_t agree = 0, total = 0;
  for (std::size_t k = 0; k < 4 && k < art_->dataset.test.size(); ++k) {
    const auto& rec = art_->dataset.test[k];
    const auto p32 = core::predict_fp32(*art_->fp32, rec.sample.image);
    const auto p8 = core::predict_int8(core, rec.sample.image);
    for (std::int64_t i = 0; i < p32.numel(); ++i) {
      agree += (p32[i] == p8[i]);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.85);
}

TEST_F(IntegrationFixture, VartBatchMatchesReferenceExecutor) {
  runtime::VartRunner runner(art_->xmodel, 3);
  std::vector<tensor::TensorI8> inputs;
  for (std::size_t k = 0; k < 6 && k < art_->dataset.test.size(); ++k) {
    inputs.push_back(quant::quantize_input(art_->qgraph,
                                           art_->dataset.test[k].sample.image));
  }
  const auto outputs = runner.run_batch(inputs);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    const auto ref = art_->qgraph.forward(inputs[k]);
    EXPECT_EQ(tensor::max_abs_diff(outputs[k], ref), 0.0);
  }
}

TEST_F(IntegrationFixture, XmodelDeploysAfterSerialization) {
  const auto path = dir_ / "deploy.xmodel";
  art_->xmodel.save(path);
  const dpu::XModel loaded = dpu::XModel::load(path);
  auto ev = core::evaluate_int8(loaded, art_->dataset.test);
  auto ev_ref = core::evaluate_int8(art_->xmodel, art_->dataset.test);
  EXPECT_DOUBLE_EQ(ev.global_dice(), ev_ref.global_dice());
}

TEST(IntegrationHeadline, FpgaBeatsGpuOnThroughputAndEfficiency) {
  // The paper's headline (Table IV/V, 1M config at 256x256): ~4.65x FPS and
  // ~12.7x energy efficiency over the RTX 2060 Mobile. The simulator was
  // calibrated once on that row; this test pins the claim loosely so
  // regressions in the timing/power models get caught.
  const dpu::XModel xm = core::build_timing_xmodel("1M");
  runtime::SocConfig soc;
  const auto rep = runtime::simulate_throughput(xm, soc, 4, 400);
  platform::ZcuPowerModel pm;
  const double fpga_fps = rep.fps;
  const double fpga_watts = pm.watts(rep, xm.compute_utilization(),
                                     xm.total_ddr_bytes() / 1e9 * rep.fps);

  platform::GpuModel gpu;
  auto g = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 256));
  const double gpu_fps = gpu.fps(*g);

  const double speedup = fpga_fps / gpu_fps;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 7.0);

  const double ee_ratio = (fpga_fps / fpga_watts) / (gpu_fps / gpu.power_watts);
  EXPECT_GT(ee_ratio, 8.0);
  EXPECT_LT(ee_ratio, 18.0);
}

TEST(IntegrationHeadline, EnergyEfficiencyDecreasesWithModelSize) {
  runtime::SocConfig soc;
  platform::ZcuPowerModel pm;
  double prev_ee = 1e18;
  for (const char* name : {"1M", "4M", "8M", "16M"}) {
    const dpu::XModel xm = core::build_timing_xmodel(name);
    const auto rep = runtime::simulate_throughput(xm, soc, 4, 200);
    const double ee = rep.fps / pm.watts(rep, xm.compute_utilization(), 1.0);
    EXPECT_LT(ee, prev_ee) << name;
    prev_ee = ee;
  }
}

TEST(IntegrationHeadline, ThreadScalingSaturatesAtFour) {
  const dpu::XModel xm = core::build_timing_xmodel("1M");
  runtime::SocConfig soc;
  const double f1 = runtime::simulate_throughput(xm, soc, 1, 300).fps;
  const double f4 = runtime::simulate_throughput(xm, soc, 4, 300).fps;
  const double f8 = runtime::simulate_throughput(xm, soc, 8, 300).fps;
  EXPECT_GT(f4, 1.5 * f1);
  EXPECT_LT(std::fabs(f8 - f4) / f4, 0.02);
}

}  // namespace
}  // namespace seneca
