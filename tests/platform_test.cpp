// Platform model tests: GPU analytic model, ZCU104 power model, energy
// logger, measurement-noise model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model_zoo.hpp"
#include "core/workflow.hpp"
#include "nn/unet.hpp"
#include "platform/gpu_model.hpp"
#include "platform/power.hpp"

namespace seneca::platform {
namespace {

TEST(GpuModel, FlopsPositiveAndScaleWithModel) {
  auto small = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 64));
  auto big = nn::build_unet2d(core::unet_config(core::zoo_entry("16M"), 64));
  const double f_small = GpuModel::graph_flops(*small);
  const double f_big = GpuModel::graph_flops(*big);
  EXPECT_GT(f_small, 0.0);
  EXPECT_GT(f_big, 4.0 * f_small);
}

TEST(GpuModel, FlopsScaleWithResolution) {
  auto lo = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 64));
  auto hi = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 128));
  EXPECT_NEAR(GpuModel::graph_flops(*hi) / GpuModel::graph_flops(*lo), 4.0, 0.2);
}

TEST(GpuModel, LatencyHasFixedFloor) {
  GpuModel gpu;
  auto g = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 64));
  // even a small model cannot beat the fixed dispatch/transfer time
  EXPECT_GE(gpu.inference_seconds(*g), gpu.host_transfer_ms * 1e-3);
}

TEST(GpuModel, BiggerModelSlower) {
  GpuModel gpu;
  auto small = nn::build_unet2d(core::unet_config(core::zoo_entry("2M"), 128));
  auto big = nn::build_unet2d(core::unet_config(core::zoo_entry("16M"), 128));
  EXPECT_LT(gpu.fps(*big), gpu.fps(*small));
}

TEST(GpuModel, FpsIsInverseLatency) {
  GpuModel gpu;
  auto g = nn::build_unet2d(core::unet_config(core::zoo_entry("4M"), 64));
  EXPECT_NEAR(gpu.fps(*g) * gpu.inference_seconds(*g), 1.0, 1e-9);
}

TEST(GpuModel, BytesPositive) {
  auto g = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 64));
  EXPECT_GT(GpuModel::graph_bytes(*g), 0.0);
}

TEST(ZcuPower, MoreBusyCoresMorePower) {
  ZcuPowerModel pm;
  runtime::ThroughputReport idle;
  idle.threads = 1;
  idle.dpu_busy_cores_avg = 0.5;
  runtime::ThroughputReport busy = idle;
  busy.dpu_busy_cores_avg = 2.0;
  EXPECT_GT(pm.watts(busy, 0.5), pm.watts(idle, 0.5));
}

TEST(ZcuPower, UtilizationRaisesPower) {
  ZcuPowerModel pm;
  runtime::ThroughputReport rep;
  rep.threads = 4;
  rep.dpu_busy_cores_avg = 2.0;
  EXPECT_GT(pm.watts(rep, 0.9), pm.watts(rep, 0.5));
}

TEST(ZcuPower, ThreadsCostPower) {
  ZcuPowerModel pm;
  runtime::ThroughputReport four;
  four.threads = 4;
  runtime::ThroughputReport eight = four;
  eight.threads = 8;
  EXPECT_GT(pm.watts(eight, 0.5), pm.watts(four, 0.5));
}

TEST(ZcuPower, InPlausibleBoardRange) {
  ZcuPowerModel pm;
  runtime::ThroughputReport rep;
  rep.threads = 4;
  rep.dpu_busy_cores_avg = 2.0;
  rep.arm_busy_cores_avg = 0.5;
  const double w = pm.watts(rep, 0.6, 1.0);
  EXPECT_GT(w, 22.0);
  EXPECT_LT(w, 35.0);
}

TEST(EnergyLogger, IntegratesPowerOverTime) {
  EnergyLogger logger(0.5, 0.0);  // no jitter
  logger.log_phase(10.0, 4.0);
  EXPECT_NEAR(logger.joules(), 40.0, 1e-9);
  EXPECT_NEAR(logger.mean_watts(), 10.0, 1e-9);
  EXPECT_NEAR(logger.seconds(), 4.0, 1e-9);
}

TEST(EnergyLogger, AccumulatesPhases) {
  EnergyLogger logger(0.5, 0.0);
  logger.log_phase(10.0, 1.0);
  logger.log_phase(20.0, 1.0);
  EXPECT_NEAR(logger.joules(), 30.0, 1e-9);
  EXPECT_NEAR(logger.mean_watts(), 15.0, 1e-9);
}

TEST(EnergyLogger, JitterProducesSmallSpread) {
  double min_j = 1e18, max_j = -1e18;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EnergyLogger logger(0.5, 0.002, seed);
    logger.log_phase(28.0, 6.0);
    min_j = std::min(min_j, logger.joules());
    max_j = std::max(max_j, logger.joules());
  }
  EXPECT_GT(max_j, min_j);                      // runs differ
  EXPECT_LT((max_j - min_j) / 168.0, 0.01);     // ...by well under 1 %
}

TEST(EnergyLogger, ResetClears) {
  EnergyLogger logger(0.5, 0.0);
  logger.log_phase(10.0, 1.0);
  logger.reset();
  EXPECT_EQ(logger.joules(), 0.0);
  EXPECT_EQ(logger.seconds(), 0.0);
}

TEST(MeasurementModel, MeanPreservedSpreadSmall) {
  MeasurementModel meter(0.001, 7);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += meter.observe(100.0);
  EXPECT_NEAR(sum / n, 100.0, 0.05);
}

TEST(MeasurementModel, Deterministic) {
  MeasurementModel a(0.001, 3), b(0.001, 3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.observe(50.0), b.observe(50.0));
  }
}

TEST(InferenceEnergy, EstimateIsConsistentAndPositive) {
  ZcuPowerModel pm;
  const dpu::XModel model =
      core::build_timing_xmodel("1M", dpu::DpuArch::b4096(), 32);
  const auto e = estimate_inference_energy(pm, model, /*threads=*/2);
  EXPECT_GT(e.fps, 0.0);
  EXPECT_GT(e.watts, pm.static_watts);  // busy board draws above idle
  EXPECT_GT(e.joules_per_frame, 0.0);
  // The serving tier's contract: J/frame = watts / fps, spf = 1 / fps.
  EXPECT_NEAR(e.joules_per_frame * e.fps, e.watts, 1e-9);
  EXPECT_NEAR(e.seconds_per_frame * e.fps, 1.0, 1e-9);
}

TEST(InferenceEnergy, BiggerModelCostsMoreJoulesPerFrame) {
  ZcuPowerModel pm;
  const dpu::XModel small =
      core::build_timing_xmodel("1M", dpu::DpuArch::b4096(), 32);
  const dpu::XModel big =
      core::build_timing_xmodel("16M", dpu::DpuArch::b4096(), 32);
  const auto e_small = estimate_inference_energy(pm, small, 2);
  const auto e_big = estimate_inference_energy(pm, big, 2);
  // Energy-aware routing relies on the zoo being monotone in J/frame:
  // smaller models finish sooner at comparable power.
  EXPECT_GT(e_big.joules_per_frame, e_small.joules_per_frame);
  EXPECT_LT(e_big.fps, e_small.fps);
}

TEST(InferenceEnergy, DeterministicForFixedOperatingPoint) {
  ZcuPowerModel pm;
  const dpu::XModel model =
      core::build_timing_xmodel("1M", dpu::DpuArch::b4096(), 32);
  const auto a = estimate_inference_energy(pm, model, 2);
  const auto b = estimate_inference_energy(pm, model, 2);
  EXPECT_DOUBLE_EQ(a.joules_per_frame, b.joules_per_frame);
  EXPECT_DOUBLE_EQ(a.watts, b.watts);
}

TEST(InferenceEnergy, PassPipelineRepricesRungCheaper) {
  // BoardSim prices its rung cost tables through this estimator from
  // caller-compiled xmodels, so the -O1 pass pipeline (the compile()
  // default) must translate its cycle wins into cheaper J/frame and
  // s/frame than a passes-disabled compile of the same graph.
  ZcuPowerModel pm;
  const dpu::XModel o0 =
      core::build_timing_xmodel("1M", dpu::DpuArch::b4096(), 256, 0);
  const dpu::XModel o1 =
      core::build_timing_xmodel("1M", dpu::DpuArch::b4096(), 256, 1);
  const auto e0 = estimate_inference_energy(pm, o0, 2);
  const auto e1 = estimate_inference_energy(pm, o1, 2);
  EXPECT_LT(e1.seconds_per_frame, e0.seconds_per_frame);
  EXPECT_LT(e1.joules_per_frame, e0.joules_per_frame);
  EXPECT_GT(e1.fps, e0.fps);
}

/// Calibration pin: the GPU model constants were fitted once against Table
/// IV; this test freezes that contract (1M row: 72.20 FPS, and the model
/// must stay within a few percent).
TEST(GpuModel, CalibrationPinnedToTableIV) {
  GpuModel gpu;
  auto g = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 256));
  EXPECT_NEAR(gpu.fps(*g), 72.20, 8.0);
  auto g16 = nn::build_unet2d(core::unet_config(core::zoo_entry("16M"), 256));
  EXPECT_NEAR(gpu.fps(*g16), 37.23, 5.0);
}

}  // namespace
}  // namespace seneca::platform
