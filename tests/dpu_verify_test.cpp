// SENECA-Prove mutation-kill suite: each Mutant.* test injects one class of
// miscompile into a known-good compiled model and asserts the verifier
// reports it under the expected check id. Clean.* tests pin the zero-findings
// baseline on every model-zoo rung at both opt levels, and RangeAgreement
// cross-validates the static interval proofs against the runtime acc32_safe
// predicate the kernels actually branch on.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "dpu/compiler.hpp"
#include "dpu/verify.hpp"
#include "dpu/xmodel.hpp"

namespace seneca::dpu {
namespace {

const std::vector<std::string> kRungs = {"16M", "8M", "4M", "2M", "1M"};

XModel compile_rung(const std::string& name, int opt_level,
                    std::int64_t input = 64) {
  CompileOptions opts;
  opts.model_name = name;
  opts.opt_level = opt_level;
  return compile(core::build_timing_qgraph(name, input), opts);
}

/// The shared mutation target: the 1M rung at -O1 has every structure the
/// mutants need (resident chains, redirected producers, materialized
/// concats, region LOADs). Compiled once, copied per test.
const XModel& base() {
  static const XModel m = compile_rung("1M", 1);
  return m;
}

bool has_check(const std::vector<Finding>& fs, const std::string& check,
               Severity sev = Severity::kError) {
  for (const auto& f : fs) {
    if (f.check == check && f.severity == sev) return true;
  }
  return false;
}

/// Asserts the verifier kills the mutant under the expected check id.
void expect_killed(const XModel& mutant, const std::string& check) {
  const std::vector<Finding> fs = verify(mutant);
  EXPECT_TRUE(has_errors(fs)) << "mutant survived verification";
  EXPECT_TRUE(has_check(fs, check))
      << "expected an error under check '" << check << "'; got:\n"
      << format_findings(mutant, fs);
}

int find_layer(const XModel& m, bool (*pred)(const XModel&, const XLayer&)) {
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    if (pred(m, m.layers[i])) return static_cast<int>(i);
  }
  return -1;
}

// --- Baseline ---------------------------------------------------------------

TEST(Clean, EveryRungVerifiesCleanAtBothOptLevels) {
  for (const auto& name : kRungs) {
    for (int opt = 0; opt <= 1; ++opt) {
      // compile() already runs the verifier as a mandatory post-pass, so
      // reaching this point at all proves no error findings; assert the
      // stronger zero-findings property (notes included) explicitly.
      const XModel m = compile_rung(name, opt);
      const std::vector<Finding> fs = verify(m);
      EXPECT_TRUE(fs.empty())
          << name << " -O" << opt << ":\n" << format_findings(m, fs);
    }
  }
}

TEST(Clean, BaseModelHasTheStructuresTheMutantsNeed) {
  const XModel& m = base();
  EXPECT_GE(find_layer(m, [](const XModel&, const XLayer& l) {
              return l.concat_dst >= 0;
            }), 0) << "no redirected producer";
  EXPECT_GE(find_layer(m, [](const XModel&, const XLayer& l) {
              return l.materialized;
            }), 0) << "no materialized concat";
  EXPECT_GE(find_layer(m, [](const XModel&, const XLayer& l) {
              return !l.input_resident.empty() && l.input_resident[0] != 0 &&
                     l.inputs[0] >= 0;
            }), 0) << "no resident input";
  EXPECT_GE(find_layer(m, [](const XModel&, const XLayer& l) {
              return l.output_resident;
            }), 0) << "no resident output";
}

// --- Mutants: concat regions (liveness & aliasing) --------------------------

TEST(Mutant, ConcatOffsetOffByOne) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.concat_dst >= 0;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].concat_offset += 1;
  expect_killed(m, "concat-region");
}

TEST(Mutant, RegionLoadAliasesRedirectedStore) {
  // Point a region LOAD at channel 0, on top of the redirected producer's
  // store: a double-write the coverage map must flag.
  XModel m = base();
  bool mutated = false;
  for (auto& l : m.layers) {
    if (!l.materialized) continue;
    for (auto& ins : l.instrs) {
      if (ins.opcode == Opcode::kLoad && ins.dst_id >= 0 &&
          ins.chan_off != 0) {
        ins.chan_off = 0;
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated) << "no region LOAD with nonzero offset to corrupt";
  expect_killed(m, "concat-region");
}

TEST(Mutant, RedirectedStoreOverrunsBuffer) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.concat_dst >= 0;
  });
  ASSERT_GE(i, 0);
  XLayer& l = m.layers[static_cast<std::size_t>(i)];
  l.concat_offset =
      m.layers[static_cast<std::size_t>(l.concat_dst)].out_shape[2];
  expect_killed(m, "concat-region");
}

// --- Mutants: residency -----------------------------------------------------

TEST(Mutant, StaleResidencySlot) {
  // Rewire a resident input to a layer two slots back: the on-chip copy it
  // would read has already been overwritten.
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.kind == XLayer::Kind::kPool && !l.input_resident.empty() &&
           l.input_resident[0] != 0 && l.inputs[0] >= 1;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].inputs[0] -= 1;
  expect_killed(m, "residency");
}

TEST(Mutant, NetworkInputMarkedResident) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return !l.inputs.empty() && l.inputs[0] == -1;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].input_resident[0] = 1;
  expect_killed(m, "residency");
}

TEST(Mutant, NetworkOutputMarkedResident) {
  XModel m = base();
  m.layers[static_cast<std::size_t>(m.output_layer)].output_resident = true;
  expect_killed(m, "residency");
}

// --- Mutants: dataflow ------------------------------------------------------

TEST(Mutant, LoadOfNeverSavedTensor) {
  // LOAD the output of a resident producer: those bytes never reached DDR.
  XModel m = base();
  const int i = find_layer(m, [](const XModel& mm, const XLayer& l) {
    return !l.input_resident.empty() && l.input_resident[0] != 0 &&
           l.inputs[0] >= 0 &&
           mm.layers[static_cast<std::size_t>(l.inputs[0])].output_resident;
  });
  ASSERT_GE(i, 0);
  XLayer& l = m.layers[static_cast<std::size_t>(i)];
  Instr load;
  load.opcode = Opcode::kLoad;
  load.layer_id = i;
  load.tensor_id = l.inputs[0];
  load.bytes = 64;
  l.instrs.insert(l.instrs.begin(), load);
  expect_killed(m, "dataflow");
}

TEST(Mutant, ForwardReferenceInput) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.kind == XLayer::Kind::kPool;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].inputs[0] = i;  // self-reference
  expect_killed(m, "structure");
}

// --- Mutants: schedule ------------------------------------------------------

TEST(Mutant, MissingActivationLoad) {
  XModel m = base();
  bool mutated = false;
  for (auto& l : m.layers) {
    for (std::size_t j = 0; j < l.instrs.size(); ++j) {
      if (l.instrs[j].opcode == Opcode::kLoad && l.instrs[j].tensor_id != -2 &&
          l.instrs[j].dst_id < 0) {
        l.instrs.erase(l.instrs.begin() + static_cast<std::ptrdiff_t>(j));
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated) << "no plain activation LOAD to delete";
  expect_killed(m, "schedule");
}

TEST(Mutant, SaveScheduledBeforeCompute) {
  XModel m = base();
  bool mutated = false;
  for (auto& l : m.layers) {
    int compute = -1, save = -1;
    for (std::size_t j = 0; j < l.instrs.size(); ++j) {
      const Opcode op = l.instrs[j].opcode;
      if (op == Opcode::kConv || op == Opcode::kTConv || op == Opcode::kPool) {
        compute = static_cast<int>(j);
      }
      if (op == Opcode::kSave) save = static_cast<int>(j);
    }
    if (compute >= 0 && save == compute + 1) {
      std::swap(l.instrs[static_cast<std::size_t>(compute)],
                l.instrs[static_cast<std::size_t>(save)]);
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated) << "no compute+SAVE pair to reorder";
  expect_killed(m, "schedule");
}

TEST(Mutant, ComputeOpcodeDoesNotMatchLayerKind) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.kind == XLayer::Kind::kPool;
  });
  ASSERT_GE(i, 0);
  for (auto& ins : m.layers[static_cast<std::size_t>(i)].instrs) {
    if (ins.opcode == Opcode::kPool) ins.opcode = Opcode::kConv;
  }
  expect_killed(m, "schedule");
}

TEST(Mutant, InstructionMacsDoNotMatchLayerWork) {
  XModel m = base();
  bool mutated = false;
  for (auto& l : m.layers) {
    for (auto& ins : l.instrs) {
      if (ins.opcode == Opcode::kConv) {
        ins.macs /= 2;
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  expect_killed(m, "schedule");
}

TEST(Mutant, ExtraProgramTerminator) {
  XModel m = base();
  Instr end;
  end.opcode = Opcode::kEnd;
  end.layer_id = 0;
  m.layers[0].instrs.push_back(end);
  expect_killed(m, "schedule");
}

// --- Mutants: blob bounds ---------------------------------------------------

TEST(Mutant, WeightSliceOverrunsBlob) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.weight_count > 0;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].weight_offset =
      static_cast<std::int64_t>(m.weights.size());
  expect_killed(m, "blob-bounds");
}

// --- Mutants: arithmetic ranges ---------------------------------------------

TEST(Mutant, RequantShiftOutsideHardwareDomain) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.kind == XLayer::Kind::kConv;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].fix_pos_w = 40;
  expect_killed(m, "range");
}

TEST(Mutant, BiasPushesAccumulatorPastInt32) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.kind == XLayer::Kind::kConv && l.bias_count > 0;
  });
  ASSERT_GE(i, 0);
  const XLayer& l = m.layers[static_cast<std::size_t>(i)];
  m.biases[static_cast<std::size_t>(l.bias_offset)] =
      std::numeric_limits<std::int32_t>::max();
  expect_killed(m, "range");
}

// --- Mutants: cycle model ---------------------------------------------------

TEST(Mutant, ComputeCyclesScaled) {
  XModel m = base();
  bool mutated = false;
  for (auto& l : m.layers) {
    for (auto& ins : l.instrs) {
      if (ins.opcode == Opcode::kConv) {
        ins.cycles *= 2.0;
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  expect_killed(m, "cycles");
}

TEST(Mutant, LayerDdrBytesSummaryDrifts) {
  XModel m = base();
  const int i = find_layer(m, [](const XModel&, const XLayer& l) {
    return l.ddr_bytes > 0;
  });
  ASSERT_GE(i, 0);
  m.layers[static_cast<std::size_t>(i)].ddr_bytes += 4096;
  expect_killed(m, "cycles");
}

// --- Range analysis vs runtime predicate ------------------------------------

TEST(RangeAgreement, StaticProofsAgreeWithRuntimeAcc32OnEveryRung) {
  for (const auto& name : kRungs) {
    for (int opt = 0; opt <= 1; ++opt) {
      const XModel m = compile_rung(name, opt);
      const std::vector<RangeProof> proofs = range_analysis(m);
      EXPECT_FALSE(proofs.empty()) << name;
      for (const RangeProof& p : proofs) {
        EXPECT_TRUE(p.acc_fits_i32)
            << name << " -O" << opt << " layer " << p.layer;
        // The interval bound is tighter than the kernels' coarse acc_bound
        // by construction, so wherever the runtime admits the int32 fast
        // path the proof must extend over it too.
        if (p.runtime_acc32 && p.shift >= -20 && p.shift <= 30) {
          EXPECT_TRUE(p.shift32_proven)
              << name << " -O" << opt << " layer " << p.layer << " shift "
              << p.shift;
        }
      }
    }
  }
}

// --- CompileError: the one error channel ------------------------------------

TEST(CompileErrorChannel, ValidateFailuresCarryFindingContext) {
  quant::QGraph qg = core::build_timing_qgraph("1M", 64);
  // Dangling edge on the first non-input op.
  int victim = -1;
  for (std::size_t i = 0; i < qg.ops.size(); ++i) {
    if (!qg.ops[i].inputs.empty()) {
      victim = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(victim, 0);
  qg.ops[static_cast<std::size_t>(victim)].inputs[0] = 999;
  try {
    compile(qg, {});
    FAIL() << "compile accepted a dangling edge";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("compile: invalid QGraph:"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("dangling input 999"),
              std::string::npos)
        << e.what();
    ASSERT_EQ(e.findings().size(), 1u);
    EXPECT_EQ(e.findings()[0].check, "qgraph");
    EXPECT_EQ(e.findings()[0].layer, victim);
    EXPECT_EQ(e.findings()[0].severity, Severity::kError);
  }
}

TEST(CompileErrorChannel, DerivesFromInvalidArgumentForLegacyCatchSites) {
  quant::QGraph qg;  // empty graph
  EXPECT_THROW(compile(qg, {}), std::invalid_argument);
}

TEST(CompileErrorChannel, VerifierThrowCarriesFormattedReportAndFindings) {
  XModel m = base();
  m.layers[static_cast<std::size_t>(m.output_layer)].output_resident = true;
  try {
    verify_or_throw(m);
    FAIL() << "verify_or_throw accepted a mutant";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("verification failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("residency"), std::string::npos);
    EXPECT_FALSE(e.findings().empty());
    EXPECT_TRUE(has_errors(e.findings()));
  }
}

// --- seneca_verify CLI ------------------------------------------------------

int run_cli(const std::string& args) {
  const std::string cmd = std::string(SENECA_VERIFY_PATH) + " " + args +
                          " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(VerifyCli, ExitCodesDistinguishCleanMutatedAndUnparseable) {
  const std::filesystem::path dir = ::testing::TempDir();
  const std::filesystem::path clean = dir / "seneca_verify_clean.xmodel";
  const std::filesystem::path bad = dir / "seneca_verify_mutant.xmodel";
  const std::filesystem::path junk = dir / "seneca_verify_junk.xmodel";

  base().save(clean);
  XModel mutant = base();
  mutant.layers[static_cast<std::size_t>(mutant.output_layer)]
      .output_resident = true;
  mutant.save(bad);
  std::ofstream(junk) << "not an xmodel";

  EXPECT_EQ(run_cli(clean.string()), 0);
  EXPECT_EQ(run_cli(bad.string()), 1);
  EXPECT_EQ(run_cli(junk.string()), 2);
  EXPECT_EQ(run_cli(""), 2);  // usage

  std::filesystem::remove(clean);
  std::filesystem::remove(bad);
  std::filesystem::remove(junk);
}

}  // namespace
}  // namespace seneca::dpu
