// Trainer and optimizer tests: loss decreases, overfitting a tiny synthetic
// task works, optimizer update rules behave.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "nn/unet.hpp"
#include "util/rng.hpp"

namespace seneca::nn {
namespace {

using tensor::Shape;
using tensor::TensorF;

/// A trivially learnable segmentation task: class = 0 where input < 0,
/// class 1 where 0 <= input < 0.5, class 2 above.
std::vector<Sample> threshold_task(int n, std::int64_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> data;
  for (int i = 0; i < n; ++i) {
    Sample s;
    s.image = TensorF(Shape{size, size, 1});
    s.labels = LabelMap(Shape{size, size});
    for (std::int64_t p = 0; p < size * size; ++p) {
      const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
      s.image[p] = v;
      s.labels[p] = v < 0.f ? 0 : (v < 0.5f ? 1 : 2);
    }
    data.push_back(std::move(s));
  }
  return data;
}

TEST(Sgd, StepMovesAgainstGradient) {
  Param p("w", Shape{2});
  p.value[0] = 1.f;
  p.value[1] = -1.f;
  p.grad[0] = 0.5f;
  p.grad[1] = -0.25f;
  Sgd opt(0.1f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.f - 0.05f);
  EXPECT_FLOAT_EQ(p.value[1], -1.f + 0.025f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p("w", Shape{1});
  p.grad[0] = 1.f;
  Sgd opt(0.1f, 0.9f);
  opt.step({&p});
  const float after_one = p.value[0];
  opt.step({&p});  // velocity = 1.9 now
  EXPECT_NEAR(p.value[0], after_one - 0.19f, 1e-6);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  Param p("w", Shape{1});
  p.grad[0] = 0.01f;
  Adam opt(0.001f);
  opt.step({&p});
  // bias-corrected first Adam step == -lr * sign(g) (approximately)
  EXPECT_NEAR(p.value[0], -0.001f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w-3)^2 -> grad = 2(w-3)
  Param p("w", Shape{1});
  p.value[0] = 0.f;
  Adam opt(0.05f);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = 2.f * (p.value[0] - 3.f);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.f, 0.05f);
}

TEST(Trainer, LossDecreasesOnThresholdTask) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.num_classes = 3;
  cfg.dropout = 0.05f;
  auto g = build_unet2d(cfg);
  auto data = threshold_task(8, 16, 3);
  CrossEntropyLoss loss;
  TrainOptions opts;
  opts.epochs = 20;
  opts.learning_rate = 3e-3f;
  const TrainReport report = train(*g, loss, data, opts);
  ASSERT_EQ(report.epoch_losses.size(), 20u);
  EXPECT_LT(report.epoch_losses.back(), 0.5 * report.epoch_losses.front());
  EXPECT_EQ(report.steps, 160);
}

TEST(Trainer, OverfitsToHighAccuracy) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 6;
  cfg.num_classes = 3;
  cfg.dropout = 0.f;
  auto g = build_unet2d(cfg);
  auto data = threshold_task(6, 16, 5);
  CrossEntropyLoss loss;
  TrainOptions opts;
  opts.epochs = 60;
  opts.learning_rate = 3e-3f;
  opts.lr_decay = 0.97f;
  train(*g, loss, data, opts);
  // pixel accuracy on the training data should be near-perfect
  std::int64_t correct = 0, total = 0;
  for (const auto& s : data) {
    const LabelMap pred = predict_labels(g->forward(s.image, false));
    for (std::int64_t i = 0; i < pred.numel(); ++i) {
      correct += (pred[i] == s.labels[i]);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.93);
}

TEST(Trainer, EmptyDatasetIsNoop) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto g = build_unet2d(cfg);
  CrossEntropyLoss loss;
  const TrainReport report = train(*g, loss, {}, TrainOptions{});
  EXPECT_TRUE(report.epoch_losses.empty());
  EXPECT_EQ(report.steps, 0);
}

TEST(Trainer, EpochCallbackFires) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.num_classes = 3;
  auto g = build_unet2d(cfg);
  auto data = threshold_task(2, 16, 7);
  CrossEntropyLoss loss;
  TrainOptions opts;
  opts.epochs = 3;
  int calls = 0;
  opts.on_epoch = [&](int epoch, double) { calls += (epoch >= 0); };
  train(*g, loss, data, opts);
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, EvaluateLossMatchesTrainingSignal) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.num_classes = 3;
  cfg.dropout = 0.f;
  auto g = build_unet2d(cfg);
  auto data = threshold_task(4, 16, 9);
  CrossEntropyLoss loss;
  const double before = evaluate_loss(*g, loss, data);
  TrainOptions opts;
  opts.epochs = 10;
  opts.learning_rate = 2e-3f;
  train(*g, loss, data, opts);
  const double after = evaluate_loss(*g, loss, data);
  EXPECT_LT(after, before);
}

TEST(PredictLabels, TakesArgmax) {
  TensorF probs(Shape{1, 2, 3}, 0.f);
  probs[0 * 3 + 1] = 0.9f;
  probs[1 * 3 + 2] = 0.8f;
  const LabelMap labels = predict_labels(probs);
  EXPECT_EQ(labels.shape(), (Shape{1, 2}));
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 2);
}

TEST(PredictLabels, Works3D) {
  TensorF probs(Shape{2, 2, 2, 2}, 0.f);
  for (std::int64_t i = 0; i < 8; ++i) probs[i * 2 + (i % 2)] = 1.f;
  const LabelMap labels = predict_labels(probs);
  EXPECT_EQ(labels.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);
}

}  // namespace
}  // namespace seneca::nn
