// Micro-batcher tests: release on the size trigger vs. the wait-window
// trigger, single-lane batches, and shutdown drain. Timing assertions are
// deliberately loose (single-core CI hosts).
#include <gtest/gtest.h>

#include <thread>

#include "serve/batcher.hpp"
#include "util/timer.hpp"

namespace seneca::serve {
namespace {

Request make_request(std::uint64_t id, Priority p) {
  Request r;
  r.id = id;
  r.priority = p;
  return r;
}

TEST(MicroBatcher, ReleasesOnSizeTriggerWithoutWaitingOutTheWindow) {
  AdmissionQueue queue({.capacity = 16});
  // Huge wait window: only the size trigger can release quickly.
  MicroBatcher batcher(queue, {.max_batch_size = 4, .max_wait_ms = 5000.0});
  for (std::uint64_t i = 0; i < 4; ++i) {
    queue.push(make_request(i, Priority::kBatch));
  }
  util::Timer timer;
  const auto batch = batcher.next_batch();
  EXPECT_LT(timer.millis(), 1000.0);  // far below the 5 s window
  ASSERT_EQ(batch.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, i);
}

TEST(MicroBatcher, ReleasesOnTimeoutWithPartialBatch) {
  AdmissionQueue queue({.capacity = 16});
  MicroBatcher batcher(queue, {.max_batch_size = 8, .max_wait_ms = 40.0});
  queue.push(make_request(7, Priority::kBatch));
  util::Timer timer;
  const auto batch = batcher.next_batch();
  const double elapsed = timer.millis();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 7u);
  EXPECT_GE(elapsed, 35.0);  // held the window open for stragglers
}

TEST(MicroBatcher, InteractiveLaneDispatchesImmediately) {
  AdmissionQueue queue({.capacity = 16});
  MicroBatcher batcher(queue, {.max_batch_size = 8,
                               .max_wait_ms = 5000.0,
                               .interactive_max_wait_ms = 0.0});
  queue.push(make_request(1, Priority::kInteractive));
  util::Timer timer;
  const auto batch = batcher.next_batch();
  EXPECT_LT(timer.millis(), 1000.0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 1u);
}

TEST(MicroBatcher, BatchesAreSingleLaneInteractiveFirst) {
  AdmissionQueue queue({.capacity = 16});
  MicroBatcher batcher(queue, {.max_batch_size = 8, .max_wait_ms = 0.0});
  queue.push(make_request(0, Priority::kBatch));
  queue.push(make_request(1, Priority::kInteractive));
  queue.push(make_request(2, Priority::kInteractive));

  auto first = batcher.next_batch();
  ASSERT_EQ(first.size(), 2u);  // both interactive, no batch-lane mixing
  EXPECT_EQ(first[0].priority, Priority::kInteractive);
  EXPECT_EQ(first[1].priority, Priority::kInteractive);

  auto second = batcher.next_batch();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 0u);
}

TEST(MicroBatcher, LateSameLaneArrivalsJoinWithinTheWindow) {
  AdmissionQueue queue({.capacity = 16});
  MicroBatcher batcher(queue, {.max_batch_size = 2, .max_wait_ms = 2000.0});
  queue.push(make_request(0, Priority::kBatch));
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(make_request(1, Priority::kBatch));
  });
  const auto batch = batcher.next_batch();  // wakes on the late arrival
  producer.join();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].id, 1u);
}

TEST(MicroBatcher, InteractiveArrivalPreemptsBatchCollectionWindow) {
  AdmissionQueue queue({.capacity = 16});
  // Window far longer than the test budget: only preemption can release.
  MicroBatcher batcher(queue, {.max_batch_size = 8, .max_wait_ms = 5000.0});
  queue.push(make_request(0, Priority::kBatch));
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(make_request(1, Priority::kInteractive));
  });
  util::Timer timer;
  const auto first = batcher.next_batch();
  EXPECT_LT(timer.millis(), 2000.0);  // released by the interactive arrival
  producer.join();
  // The interactive request cuts the line; the batch request was requeued.
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, 1u);
  EXPECT_EQ(first[0].priority, Priority::kInteractive);
  EXPECT_GE(queue.stats().requeued, 1u);

  // With the interactive lane clear, the batch request dispatches on its
  // (now short) window.
  MicroBatcher quick(queue, {.max_batch_size = 8, .max_wait_ms = 1.0});
  const auto second = quick.next_batch();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 0u);
}

TEST(MicroBatcher, InteractiveLaneHonorsItsOwnSizeCap) {
  AdmissionQueue queue({.capacity = 16});
  MicroBatcher batcher(queue, {.max_batch_size = 4,
                               .max_wait_ms = 0.0,
                               .interactive_max_batch_size = 2});
  for (std::uint64_t i = 0; i < 4; ++i) {
    queue.push(make_request(i, Priority::kInteractive));
  }
  EXPECT_EQ(batcher.next_batch().size(), 2u);  // capped below max_batch_size
  EXPECT_EQ(batcher.next_batch().size(), 2u);

  for (std::uint64_t i = 0; i < 4; ++i) {
    queue.push(make_request(10 + i, Priority::kBatch));
  }
  EXPECT_EQ(batcher.next_batch().size(), 4u);  // batch lane keeps the full cap
}

TEST(MicroBatcher, ReturnsEmptyOnceClosedAndDrained) {
  AdmissionQueue queue({.capacity = 16});
  MicroBatcher batcher(queue, {.max_batch_size = 4, .max_wait_ms = 1.0});
  queue.push(make_request(0, Priority::kBatch));
  queue.close();
  EXPECT_EQ(batcher.next_batch().size(), 1u);  // drains what was queued
  EXPECT_TRUE(batcher.next_batch().empty());   // then signals shutdown
}

}  // namespace
}  // namespace seneca::serve
