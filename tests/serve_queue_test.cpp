// Admission-queue tests: lane ordering, every overload policy dropping the
// intended request, close/drain semantics, and backpressure stats.
#include <gtest/gtest.h>

#include "serve/queue.hpp"

namespace seneca::serve {
namespace {

Request make_request(std::uint64_t id, Priority p,
                     Clock::time_point deadline = Clock::time_point::max()) {
  Request r;
  r.id = id;
  r.priority = p;
  r.deadline = deadline;
  return r;
}

const Clock::time_point t0 = Clock::now();
Clock::time_point at_ms(double ms) {
  return t0 + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
}

TEST(AdmissionQueue, PopsInteractiveLaneFirst) {
  AdmissionQueue q({.capacity = 8, .policy = OverloadPolicy::kRejectNewest});
  EXPECT_TRUE(q.push(make_request(0, Priority::kBatch), t0).admitted);
  EXPECT_TRUE(q.push(make_request(1, Priority::kBatch), t0).admitted);
  EXPECT_TRUE(q.push(make_request(2, Priority::kInteractive), t0).admitted);
  EXPECT_EQ(q.pop()->id, 2u);  // interactive jumps the batch lane
  EXPECT_EQ(q.pop()->id, 0u);  // then batch FIFO
  EXPECT_EQ(q.pop()->id, 1u);
}

TEST(AdmissionQueue, RejectNewestDropsTheIncomingRequest) {
  AdmissionQueue q({.capacity = 2, .policy = OverloadPolicy::kRejectNewest});
  EXPECT_TRUE(q.push(make_request(0, Priority::kBatch), t0).admitted);
  EXPECT_TRUE(q.push(make_request(1, Priority::kBatch), t0).admitted);
  const auto result = q.push(make_request(2, Priority::kInteractive), t0);
  EXPECT_FALSE(result.admitted);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].id, 2u);  // the newest request is the victim
  EXPECT_TRUE(result.expired.empty());
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.stats().rejected, 1u);
}

TEST(AdmissionQueue, DropExpiredSweepsDeadRequestsToAdmit) {
  AdmissionQueue q({.capacity = 2, .policy = OverloadPolicy::kDropExpired});
  // id 0 has a deadline already in the past at push-3 time; id 1 lives on.
  EXPECT_TRUE(q.push(make_request(0, Priority::kBatch, at_ms(5)), t0).admitted);
  EXPECT_TRUE(q.push(make_request(1, Priority::kBatch), t0).admitted);
  const auto result = q.push(make_request(2, Priority::kBatch), at_ms(10));
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.expired.size(), 1u);
  EXPECT_EQ(result.expired[0].id, 0u);  // the expired request is the victim
  EXPECT_EQ(q.stats().expired, 1u);
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 2u);
}

TEST(AdmissionQueue, DropExpiredFallsBackToRejectWhenNothingExpired) {
  AdmissionQueue q({.capacity = 1, .policy = OverloadPolicy::kDropExpired});
  EXPECT_TRUE(q.push(make_request(0, Priority::kBatch), t0).admitted);
  const auto result = q.push(make_request(1, Priority::kBatch), t0);
  EXPECT_FALSE(result.admitted);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].id, 1u);
}

TEST(AdmissionQueue, EvictDeadlineDisplacesTheSlackestRequest) {
  AdmissionQueue q({.capacity = 2, .policy = OverloadPolicy::kEvictDeadline});
  EXPECT_TRUE(
      q.push(make_request(0, Priority::kBatch, at_ms(100)), t0).admitted);
  EXPECT_TRUE(
      q.push(make_request(1, Priority::kBatch, at_ms(50)), t0).admitted);
  // More urgent than both: the 100 ms request (most slack) is the victim.
  const auto result = q.push(make_request(2, Priority::kInteractive, at_ms(10)), t0);
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].id, 0u);
  EXPECT_EQ(q.stats().evicted, 1u);
  // Less urgent than everything queued: the incoming request is refused.
  const auto refused = q.push(make_request(3, Priority::kBatch, at_ms(200)), t0);
  EXPECT_FALSE(refused.admitted);
  ASSERT_EQ(refused.rejected.size(), 1u);
  EXPECT_EQ(refused.rejected[0].id, 3u);
}

TEST(AdmissionQueue, EvictDeadlineTreatsNoDeadlineAsInfinitelySlack) {
  AdmissionQueue q({.capacity = 2, .policy = OverloadPolicy::kEvictDeadline});
  EXPECT_TRUE(q.push(make_request(0, Priority::kBatch), t0).admitted);
  EXPECT_TRUE(
      q.push(make_request(1, Priority::kInteractive, at_ms(50)), t0).admitted);
  const auto result =
      q.push(make_request(2, Priority::kInteractive, at_ms(10)), t0);
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].id, 0u);  // the deadline-less batch request
}

TEST(AdmissionQueue, StatsTrackDepthAndHighWater) {
  AdmissionQueue q({.capacity = 8, .policy = OverloadPolicy::kRejectNewest});
  for (std::uint64_t i = 0; i < 5; ++i) {
    q.push(make_request(i, Priority::kBatch), t0);
  }
  q.pop();
  q.pop();
  const auto s = q.stats();
  EXPECT_EQ(s.admitted, 5u);
  EXPECT_EQ(s.popped, 2u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.high_water, 5u);
  EXPECT_EQ(q.depth(Priority::kBatch), 3u);
  EXPECT_EQ(q.depth(Priority::kInteractive), 0u);
}

TEST(AdmissionQueue, CloseRejectsNewPushesAndDrainsTheRest) {
  AdmissionQueue q({.capacity = 4, .policy = OverloadPolicy::kRejectNewest});
  EXPECT_TRUE(q.push(make_request(0, Priority::kBatch), t0).admitted);
  q.close();
  EXPECT_TRUE(q.closed());
  const auto result = q.push(make_request(1, Priority::kBatch), t0);
  EXPECT_FALSE(result.admitted);
  ASSERT_EQ(result.rejected.size(), 1u);
  auto drained = q.pop();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->id, 0u);
  EXPECT_FALSE(q.pop().has_value());  // closed + empty: no block, no value
}

TEST(AdmissionQueue, WaitNonemptyUntilTimesOutOnEmptyLane) {
  AdmissionQueue q({.capacity = 4, .policy = OverloadPolicy::kRejectNewest});
  q.push(make_request(0, Priority::kBatch), t0);
  EXPECT_FALSE(q.wait_nonempty_until(
      Priority::kInteractive,
      Clock::now() + std::chrono::milliseconds(5)));
  EXPECT_TRUE(q.wait_nonempty_until(
      Priority::kBatch, Clock::now() + std::chrono::milliseconds(5)));
}

}  // namespace
}  // namespace seneca::serve
