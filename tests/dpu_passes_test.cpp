// Pass-pipeline tests: the compiler IR, the individual optimizing passes
// (constant folding, dead-node elimination, concat elimination, tile
// search), per-pass stats, and end-to-end bit-exactness of optimized
// programs against both -O0 and the quantized reference executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "dpu/compiler.hpp"
#include "dpu/core_sim.hpp"
#include "dpu/ir.hpp"
#include "dpu/passes.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace seneca::dpu {
namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

quant::QGraph tiny_qgraph(std::uint64_t seed = 5, std::int64_t size = 16,
                          std::int64_t base_filters = 4) {
  nn::UNet2DConfig cfg;
  cfg.input_size = size;
  cfg.depth = 2;
  cfg.base_filters = base_filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  for (int i = 0; i < 4; ++i) {
    util::Rng rng(seed + 100 + static_cast<std::uint64_t>(i));
    TensorF x(Shape{size, size, 1});
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
    graph->forward(x, true);
  }
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib;
  util::Rng rng(seed + 7);
  TensorF img(Shape{size, size, 1});
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1, 1));
  calib.push_back(img);
  return quant::quantize(fg, calib);
}

TensorI8 random_input(const Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 t(shape);
  for (auto& v : t) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  return t;
}

XModel compile_at(const quant::QGraph& qg, int opt_level,
                  CompileReport* report = nullptr) {
  CompileOptions opts;
  opts.opt_level = opt_level;
  return compile(qg, opts, report);
}

// --- IR basics -------------------------------------------------------------

TEST(Ir, LowerPreservesTopologyAndPayloads) {
  const quant::QGraph qg = tiny_qgraph();
  const ir::Graph g = ir::lower(qg, DpuArch::b4096(), "t");
  std::size_t non_input = 0;
  for (const auto& op : qg.ops) {
    non_input += (op.kind != quant::QOpKind::kInput);
  }
  EXPECT_EQ(g.nodes.size(), non_input);
  EXPECT_GE(g.output, 0);
  // Every edge points backwards (topological order).
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    for (int in : g.nodes[i].inputs) {
      EXPECT_LT(in, static_cast<int>(i));
    }
  }
}

TEST(Ir, EffFixPosWalksPoolChains) {
  const quant::QGraph qg = tiny_qgraph();
  const ir::Graph g = ir::lower(qg, DpuArch::b4096(), "t");
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].kind != ir::NodeKind::kPool) continue;
    EXPECT_EQ(g.eff_fix_pos(static_cast<int>(i)),
              g.eff_fix_pos(g.nodes[i].inputs[0]));
  }
}

TEST(Ir, ConsumersInvertInputs) {
  const quant::QGraph qg = tiny_qgraph();
  const ir::Graph g = ir::lower(qg, DpuArch::b4096(), "t");
  const auto cons = g.consumers();
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    for (int in : g.nodes[i].inputs) {
      if (in < 0) continue;
      const auto& c = cons[static_cast<std::size_t>(in)];
      EXPECT_NE(std::find(c.begin(), c.end(), static_cast<int>(i)), c.end());
    }
  }
}

// --- Concat elimination ----------------------------------------------------

TEST(ConcatElim, MaterializesSkipConcatsAndDeletesInstructions) {
  const quant::QGraph qg = tiny_qgraph();
  const XModel o0 = compile_at(qg, 0);
  const XModel o1 = compile_at(qg, 1);
  std::size_t materialized = 0;
  for (std::size_t i = 0; i < o1.layers.size(); ++i) {
    const XLayer& l = o1.layers[i];
    if (l.kind != XLayer::Kind::kConcat) continue;
    EXPECT_TRUE(l.materialized) << l.name;
    ++materialized;
    // No kConcat instruction survives; region LOADs are offset-addressed
    // into this layer's buffer.
    for (const auto& ins : l.instrs) {
      EXPECT_NE(ins.opcode, Opcode::kConcat) << l.name;
      if (ins.opcode == Opcode::kLoad) {
        EXPECT_EQ(ins.dst_id, static_cast<std::int32_t>(i));
        EXPECT_GE(ins.chan_off, 0);
      }
    }
    // Exactly one redirected producer (the adjacent tconv) scatters in.
    std::size_t redirected = 0;
    for (const auto& p : o1.layers) {
      redirected += (p.concat_dst == static_cast<std::int32_t>(i));
    }
    EXPECT_EQ(redirected, 1u) << l.name;
  }
  EXPECT_GT(materialized, 0u);
  EXPECT_LT(o1.total_instructions(), o0.total_instructions());
}

TEST(ConcatElim, RedirectedProducerOffsetsMatchConcatLayout) {
  const XModel o1 = compile_at(tiny_qgraph(), 1);
  for (std::size_t p = 0; p < o1.layers.size(); ++p) {
    const XLayer& producer = o1.layers[p];
    if (producer.concat_dst < 0) continue;
    const XLayer& concat =
        o1.layers[static_cast<std::size_t>(producer.concat_dst)];
    ASSERT_TRUE(concat.materialized);
    // The producer is one of the concat's inputs and its channel region
    // lies inside the concat buffer.
    std::int64_t off = 0;
    bool found = false;
    for (int in : concat.inputs) {
      if (in == static_cast<int>(p)) {
        EXPECT_EQ(producer.concat_offset, off);
        found = true;
        break;
      }
      off += o1.layers[static_cast<std::size_t>(in)].out_shape[2];
    }
    EXPECT_TRUE(found);
    EXPECT_LE(producer.concat_offset + producer.out_shape[2],
              concat.out_shape[2]);
  }
}

// --- Constant folding + DCE ------------------------------------------------

quant::QGraph graph_with_zero_branch() {
  // input -> convA (live path, output)
  //       -> convZ (all-zero weights) -> concat(convA, convZ) is NOT built;
  // instead convZ feeds convB whose output is concatenated with convA so
  // the folded branch stays reachable until DCE sees what folding exposes.
  quant::QGraph qg;
  quant::QOp input;
  input.kind = quant::QOpKind::kInput;
  input.out_shape = Shape{8, 8, 4};
  input.fix_pos_out = 6;
  qg.ops.push_back(input);
  auto conv = [](const char* name, int in, std::int64_t ci, std::int64_t co,
                 std::int8_t w, std::int32_t b) {
    quant::QOp op;
    op.kind = quant::QOpKind::kConv2D;
    op.name = name;
    op.inputs = {in};
    op.out_shape = Shape{8, 8, co};
    op.kernel = 3;
    op.fix_pos_w = 6;
    op.fix_pos_out = 5;
    op.relu = true;
    op.weights = tensor::TensorI8(Shape{3, 3, ci, co}, w);
    op.bias.assign(static_cast<std::size_t>(co), b);
    return op;
  };
  qg.ops.push_back(conv("live", 0, 4, 4, 1, 10));    // op 1
  qg.ops.push_back(conv("zeroed", 0, 4, 4, 0, 70));  // op 2: folds to const
  quant::QOp cat;
  cat.kind = quant::QOpKind::kConcat;
  cat.name = "cat";
  cat.inputs = {1, 2};
  cat.out_shape = Shape{8, 8, 8};
  cat.fix_pos_out = 5;
  qg.ops.push_back(cat);  // op 3
  qg.ops.push_back(conv("head", 3, 8, 4, 1, 0));  // op 4
  qg.input_op = 0;
  qg.output_op = 4;
  qg.input_fix_pos = 6;
  qg.input_shape = Shape{8, 8, 4};
  return qg;
}

TEST(ConstFold, ZeroWeightConvBecomesConstLayer) {
  const quant::QGraph qg = graph_with_zero_branch();
  const XModel o1 = compile_at(qg, 1);
  bool found_const = false;
  for (const auto& l : o1.layers) {
    if (l.kind != XLayer::Kind::kConst) continue;
    found_const = true;
    EXPECT_EQ(l.name, "zeroed");
    EXPECT_TRUE(l.instrs.empty());  // no runtime footprint
    EXPECT_EQ(l.weight_count, l.out_shape.numel());
  }
  EXPECT_TRUE(found_const);
}

TEST(ConstFold, FoldedProgramIsBitExact) {
  const quant::QGraph qg = graph_with_zero_branch();
  const XModel o0 = compile_at(qg, 0);
  const XModel o1 = compile_at(qg, 1);
  const TensorI8 in = random_input(qg.input_shape, 11);
  const TensorI8 ref = qg.forward(in);
  EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o0).run(in).output), 0.0);
  EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o1).run(in).output), 0.0);
}

TEST(ConstFold, FullyConstGraphFoldsThroughEveryOpKind) {
  // zero-weight conv -> pool -> tconv -> concat: after the first fold the
  // whole chain has const inputs and folds via the reference kernels.
  quant::QGraph qg;
  quant::QOp input;
  input.kind = quant::QOpKind::kInput;
  input.out_shape = Shape{8, 8, 4};
  input.fix_pos_out = 6;
  qg.ops.push_back(input);
  quant::QOp z;
  z.kind = quant::QOpKind::kConv2D;
  z.name = "z";
  z.inputs = {0};
  z.out_shape = Shape{8, 8, 4};
  z.kernel = 3;
  z.fix_pos_w = 6;
  z.fix_pos_out = 5;
  z.weights = tensor::TensorI8(Shape{3, 3, 4, 4}, 0);
  z.bias = {100, -50, 7, 0};
  qg.ops.push_back(z);  // op 1
  quant::QOp pool;
  pool.kind = quant::QOpKind::kMaxPool2D;
  pool.name = "p";
  pool.inputs = {1};
  pool.out_shape = Shape{4, 4, 4};
  pool.fix_pos_out = 5;
  qg.ops.push_back(pool);  // op 2
  quant::QOp up;
  up.kind = quant::QOpKind::kTConv2D;
  up.name = "u";
  up.inputs = {2};
  up.out_shape = Shape{8, 8, 4};
  up.kernel = 3;
  up.fix_pos_w = 6;
  up.fix_pos_out = 4;
  up.weights = tensor::TensorI8(Shape{3, 3, 4, 4}, 2);
  up.bias.assign(4, 5);
  qg.ops.push_back(up);  // op 3
  quant::QOp cat;
  cat.kind = quant::QOpKind::kConcat;
  cat.name = "cat";
  cat.inputs = {3, 1};
  cat.out_shape = Shape{8, 8, 8};
  cat.fix_pos_out = 4;
  qg.ops.push_back(cat);  // op 4
  qg.input_op = 0;
  qg.output_op = 4;
  qg.input_fix_pos = 6;
  qg.input_shape = Shape{8, 8, 4};

  const XModel o1 = compile_at(qg, 1);
  // Everything folded into one surviving const layer (DCE removed the
  // intermediate consts feeding it).
  ASSERT_EQ(o1.layers.size(), 1u);
  EXPECT_EQ(o1.layers[0].kind, XLayer::Kind::kConst);

  const TensorI8 in = random_input(qg.input_shape, 13);
  const TensorI8 ref = qg.forward(in);
  EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o1).run(in).output), 0.0);
  // The folded program still reports a valid (smaller) latency.
  EXPECT_GT(o1.latency_cycles(1), 0.0);
  const XModel o0 = compile_at(qg, 0);
  EXPECT_LT(o1.latency_cycles(1), o0.latency_cycles(1));
}

TEST(Dce, RemovesUnreachableBranch) {
  quant::QGraph qg;
  quant::QOp input;
  input.kind = quant::QOpKind::kInput;
  input.out_shape = Shape{8, 8, 4};
  qg.ops.push_back(input);
  for (const char* name : {"live", "dead"}) {
    quant::QOp op;
    op.kind = quant::QOpKind::kConv2D;
    op.name = name;
    op.inputs = {0};
    op.out_shape = Shape{8, 8, 4};
    op.kernel = 3;
    op.weights = tensor::TensorI8(Shape{3, 3, 4, 4}, 1);
    op.bias.assign(4, 0);
    qg.ops.push_back(op);
  }
  qg.input_op = 0;
  qg.output_op = 1;
  qg.input_shape = Shape{8, 8, 4};

  const XModel o0 = compile_at(qg, 0);
  const XModel o1 = compile_at(qg, 1);
  EXPECT_EQ(o0.layers.size(), 2u);
  ASSERT_EQ(o1.layers.size(), 1u);
  EXPECT_EQ(o1.layers[0].name, "live");
  EXPECT_EQ(o1.output_layer, 0);
}

// --- Tile search -----------------------------------------------------------

TEST(TileSearch, TilesBandwidthBoundConvAndCutsLatency) {
  // One big conv from the network input: full input LOAD + output SAVE with
  // nothing resident — the canonical row-tiling candidate.
  quant::QGraph qg;
  quant::QOp input;
  input.kind = quant::QOpKind::kInput;
  input.out_shape = Shape{64, 64, 32};
  input.fix_pos_out = 6;
  qg.ops.push_back(input);
  quant::QOp conv;
  conv.kind = quant::QOpKind::kConv2D;
  conv.name = "big";
  conv.inputs = {0};
  conv.out_shape = Shape{64, 64, 32};
  conv.kernel = 3;
  conv.fix_pos_w = 6;
  conv.fix_pos_out = 5;
  conv.weights = tensor::TensorI8(Shape{3, 3, 32, 32}, 1);
  conv.bias.assign(32, 0);
  qg.ops.push_back(conv);
  qg.input_op = 0;
  qg.output_op = 1;
  qg.input_fix_pos = 6;
  qg.input_shape = Shape{64, 64, 32};

  const XModel o0 = compile_at(qg, 0);
  const XModel o1 = compile_at(qg, 1);
  ASSERT_EQ(o1.layers.size(), 1u);
  const XLayer& l = o1.layers[0];
  EXPECT_GT(l.tile_count, 1);
  EXPECT_EQ(static_cast<int>(l.tile_mode), 1);  // rows
  EXPECT_GT(l.overlap_bytes, 0);
  EXPECT_LE(l.overlap_bytes, l.ddr_bytes);
  EXPECT_LT(o1.latency_cycles(1), o0.latency_cycles(1));
  // Not worse under bandwidth sharing (the pass's acceptance criterion).
  EXPECT_LE(o1.latency_cycles(2), o0.latency_cycles(2));

  // Tiling is a timing attribute only: functional results are unchanged.
  const TensorI8 in = random_input(qg.input_shape, 17);
  EXPECT_EQ(tensor::max_abs_diff(DpuCoreSim(&o0).run(in).output,
                                 DpuCoreSim(&o1).run(in).output),
            0.0);
}

// --- End-to-end bit-exactness ---------------------------------------------

TEST(PassPipeline, OptimizedUnetBitExactVsReferenceAndO0) {
  for (std::int64_t base : {4, 6}) {  // 6: non-bank-aligned channels
    const quant::QGraph qg = tiny_qgraph(5, 16, base);
    const XModel o0 = compile_at(qg, 0);
    const XModel o1 = compile_at(qg, 1);
    const TensorI8 in = random_input(qg.input_shape, 23 + static_cast<std::uint64_t>(base));
    const TensorI8 ref = qg.forward(in);
    EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o0).run(in).output), 0.0)
        << "base " << base;
    EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o1).run(in).output), 0.0)
        << "base " << base;
  }
}

TEST(PassPipeline, TinyOnchipArchStillBitExact) {
  // Starve the global memory pool so nothing is resident: every concat
  // input becomes a region LOAD and tiling candidates lose feasibility —
  // the opposite corner from the roomy default arch.
  DpuArch arch = DpuArch::b4096();
  arch.onchip_bytes = 2048;
  CompileOptions o0opts;
  o0opts.arch = arch;
  o0opts.opt_level = 0;
  CompileOptions o1opts = o0opts;
  o1opts.opt_level = 1;
  const quant::QGraph qg = tiny_qgraph();
  const XModel o0 = compile(qg, o0opts);
  const XModel o1 = compile(qg, o1opts);
  const TensorI8 in = random_input(qg.input_shape, 29);
  const TensorI8 ref = qg.forward(in);
  EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o0).run(in).output), 0.0);
  EXPECT_EQ(tensor::max_abs_diff(ref, DpuCoreSim(&o1).run(in).output), 0.0);
}

// --- Pass manager stats ----------------------------------------------------

TEST(PassManager, ReportRecordsEveryPassInPipelineOrder)
{
  CompileReport report;
  compile_at(tiny_qgraph(), 1, &report);
  const std::vector<std::string> expected = {
      "const-fold", "dce",      "residency", "concat-elim",
      "tile-search", "schedule", "timing",    "verify"};
  ASSERT_EQ(report.passes.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(report.passes[i].pass, expected[i]);
    // Chained measurements: before[i] == after[i-1].
    if (i > 0) {
      EXPECT_EQ(report.passes[i].instrs_before,
                report.passes[i - 1].instrs_after);
      EXPECT_DOUBLE_EQ(report.passes[i].cycles_before,
                       report.passes[i - 1].cycles_after);
    }
  }
  // The optimizing passes measurably shrink the program.
  double first = report.passes.front().cycles_before;
  double last = report.passes.back().cycles_after;
  EXPECT_LT(last, first);
  const std::string table = format_pass_table(report);
  EXPECT_NE(table.find("concat-elim"), std::string::npos);
  EXPECT_NE(table.find("tile-search"), std::string::npos);
}

// --- Serialization of the new fields ---------------------------------------

TEST(XModelV2, RoundTripsPassAttributes) {
  const XModel xm = compile_at(tiny_qgraph(), 1);
  const auto path =
      std::filesystem::temp_directory_path() / "seneca_passes.xmodel";
  xm.save(path);
  const XModel loaded = XModel::load(path);
  ASSERT_EQ(loaded.layers.size(), xm.layers.size());
  for (std::size_t i = 0; i < xm.layers.size(); ++i) {
    EXPECT_EQ(loaded.layers[i].concat_dst, xm.layers[i].concat_dst);
    EXPECT_EQ(loaded.layers[i].concat_offset, xm.layers[i].concat_offset);
    EXPECT_EQ(loaded.layers[i].materialized, xm.layers[i].materialized);
    EXPECT_EQ(loaded.layers[i].tile_mode, xm.layers[i].tile_mode);
    EXPECT_EQ(loaded.layers[i].tile_count, xm.layers[i].tile_count);
    EXPECT_EQ(loaded.layers[i].overlap_bytes, xm.layers[i].overlap_bytes);
    ASSERT_EQ(loaded.layers[i].instrs.size(), xm.layers[i].instrs.size());
    for (std::size_t k = 0; k < xm.layers[i].instrs.size(); ++k) {
      EXPECT_EQ(loaded.layers[i].instrs[k].dst_id,
                xm.layers[i].instrs[k].dst_id);
      EXPECT_EQ(loaded.layers[i].instrs[k].chan_off,
                xm.layers[i].instrs[k].chan_off);
    }
  }
  EXPECT_NEAR(loaded.latency_cycles(2), xm.latency_cycles(2),
              1e-4 * xm.latency_cycles(2));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace seneca::dpu
