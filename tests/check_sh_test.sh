#!/bin/sh
# Argument-handling tests for scripts/check.sh, run in dry-run mode so the
# composed cmake/ctest command lines can be asserted without building
# anything. Registered with ctest as `check_sh_args`.
set -eu

CHECK=${1:?usage: check_sh_test.sh /path/to/check.sh}
ROOT=$(cd "$(dirname "$CHECK")/.." && pwd)

fail() {
  echo "FAIL: $1" >&2
  echo "---- output ----" >&2
  echo "$2" >&2
  exit 1
}

expect_line() {
  # expect_line <label> <output> <needle>
  case "$2" in
    *"$3"*) ;;
    *) fail "$1: missing \`$3\`" "$2" ;;
  esac
}

reject_line() {
  case "$2" in
    *"$3"*) fail "$1: unexpected \`$3\`" "$2" ;;
    *) ;;
  esac
}

# 1. No arguments: default build dir, plain configure/build/test.
out=$(SENECA_CHECK_DRY_RUN=1 sh "$CHECK")
expect_line "default" "$out" "+ cmake -B $ROOT/build -S $ROOT"
expect_line "default" "$out" "+ cmake --build $ROOT/build -j"
expect_line "default" "$out" "+ ctest --test-dir $ROOT/build --output-on-failure -j"

# 2. Custom build dir as the first argument.
out=$(SENECA_CHECK_DRY_RUN=1 sh "$CHECK" /tmp/seneca-custom)
expect_line "custom dir" "$out" "+ cmake -B /tmp/seneca-custom -S $ROOT"
expect_line "custom dir" "$out" "+ ctest --test-dir /tmp/seneca-custom"

# 3. CMake flags without a build dir: default dir, flags reach configure
#    (and only configure).
out=$(SENECA_CHECK_DRY_RUN=1 sh "$CHECK" -DSENECA_SANITIZE=thread -DSENECA_WERROR=ON)
expect_line "flags only" "$out" \
  "+ cmake -B $ROOT/build -S $ROOT -DSENECA_SANITIZE=thread -DSENECA_WERROR=ON"
reject_line "flags only" "$out" "--build $ROOT/build -j -DSENECA_SANITIZE"

# 4. Build dir and flags together.
out=$(SENECA_CHECK_DRY_RUN=1 sh "$CHECK" /tmp/seneca-tsan -DSENECA_SANITIZE=thread)
expect_line "dir+flags" "$out" \
  "+ cmake -B /tmp/seneca-tsan -S $ROOT -DSENECA_SANITIZE=thread"
expect_line "dir+flags" "$out" "+ cmake --build /tmp/seneca-tsan -j"

# 5. CTEST_ARGS pass-through to the test step only.
out=$(SENECA_CHECK_DRY_RUN=1 CTEST_ARGS="-L stress" sh "$CHECK")
expect_line "ctest args" "$out" \
  "+ ctest --test-dir $ROOT/build --output-on-failure -j -L stress"
reject_line "ctest args" "$out" "-S $ROOT -L stress"

echo "check_sh_test: all assertions passed"
