// Quantization stack tests: fix-point helpers, BN folding correctness,
// PTQ accuracy bounds, FFQ improvement, QAT mechanics.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers_common.hpp"
#include "nn/unet.hpp"
#include "quant/fgraph.hpp"
#include "quant/qat.hpp"
#include "quant/qgraph.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace seneca::quant {
namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

TensorF random_tensor(Shape shape, std::uint64_t seed, double lo = -1.0,
                      double hi = 1.0) {
  util::Rng rng(seed);
  TensorF t(shape);
  for (auto& v : t) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

/// Small trained-ish U-Net (random weights scaled down to realistic ranges)
/// plus calibration images.
struct TinyNet {
  std::unique_ptr<nn::Graph> graph;
  std::vector<TensorF> calibration;

  explicit TinyNet(std::uint64_t seed = 5, std::int64_t size = 16) {
    nn::UNet2DConfig cfg;
    cfg.input_size = size;
    cfg.depth = 2;
    cfg.base_filters = 4;
    cfg.seed = seed;
    cfg.dropout = 0.1f;
    graph = nn::build_unet2d(cfg);
    // a few training-mode passes so BN running stats are meaningful
    for (int i = 0; i < 8; ++i) {
      graph->forward(random_tensor(Shape{size, size, 1}, seed + 10 + static_cast<std::uint64_t>(i)), true);
    }
    for (int i = 0; i < 4; ++i) {
      calibration.push_back(random_tensor(Shape{size, size, 1}, seed + 50 + static_cast<std::uint64_t>(i)));
    }
  }
};

// ----------------------------------------------------- fix-point helpers --

TEST(FixPoint, RoundTripSmallValues) {
  TensorF x(Shape{5});
  x[0] = 0.5f; x[1] = -0.25f; x[2] = 0.f; x[3] = 0.99f; x[4] = -1.f;
  const int fp = choose_fix_pos(x);
  const TensorF back = dequantize_tensor(quantize_tensor(x, fp), fp);
  EXPECT_LT(tensor::max_abs_diff(x, back), std::ldexp(1.0, -fp));
}

TEST(FixPoint, ChooseFixPosCoversRange) {
  TensorF x(Shape{3});
  x[0] = 100.f; x[1] = -90.f; x[2] = 0.f;
  const int fp = choose_fix_pos(x);
  // 127 * 2^-fp must reach close to 100
  EXPECT_GE(127.0 * std::ldexp(1.0, -fp), 90.0);
}

TEST(FixPoint, ChooseFixPosForUnitRange) {
  TensorF x = random_tensor(Shape{1000}, 3);
  x[0] = 1.f;  // pin the max
  const int fp = choose_fix_pos(x);
  EXPECT_GE(fp, 6);
  EXPECT_LE(fp, 7);
}

TEST(FixPoint, SaturateClamps) {
  EXPECT_EQ(saturate_i8(200), 127);
  EXPECT_EQ(saturate_i8(-200), -128);
  EXPECT_EQ(saturate_i8(5), 5);
}

TEST(FixPoint, RshiftRoundHalfAwayFromZero) {
  EXPECT_EQ(rshift_round(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rshift_round(-5, 1), -3);  // -2.5 -> -3
  EXPECT_EQ(rshift_round(4, 1), 2);
  EXPECT_EQ(rshift_round(-4, 1), -2);
  EXPECT_EQ(rshift_round(7, 2), 2);    // 1.75 -> 2
}

TEST(FixPoint, RshiftNegativeShiftIsLeftShift) {
  EXPECT_EQ(rshift_round(3, -2), 12);
  EXPECT_EQ(rshift_round(-3, -1), -6);
}

TEST(FixPoint, QuantizationMseDecreasesAtOptimum) {
  TensorF x = random_tensor(Shape{512}, 7, -0.9, 0.9);
  const int fp = choose_fix_pos(x);
  EXPECT_LE(quantization_mse(x, fp), quantization_mse(x, fp - 2));
  EXPECT_LE(quantization_mse(x, fp), quantization_mse(x, fp + 2));
}

// -------------------------------------------------------------- folding --

TEST(Fold, MatchesOriginalGraphInference) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  const TensorF x = random_tensor(Shape{16, 16, 1}, 99);
  const TensorF& ref_probs = net.graph->forward(x, false);
  const TensorF logits = fg.forward(x);
  // The folded graph drops the softmax; compare argmax and softmax values.
  nn::Softmax sm;
  TensorF probs(logits.shape());
  const TensorF* in[] = {&logits};
  sm.forward({in[0]}, probs, false);
  EXPECT_LT(tensor::max_abs_diff(ref_probs, probs), 2e-4);
}

TEST(Fold, RemovesDropoutAndSoftmax) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  for (const auto& op : fg.ops) {
    EXPECT_NE(op.name.find("drop"), 0u);  // no dropout ops survive
  }
  // output op is the head conv, not a softmax
  EXPECT_EQ(fg.ops[static_cast<std::size_t>(fg.output_op)].name, "head_conv");
}

TEST(Fold, FusesReLUIntoConvs) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  int relu_convs = 0;
  for (const auto& op : fg.ops) {
    if ((op.kind == OpKind::kConv2D || op.kind == OpKind::kTConv2D) && op.relu) {
      ++relu_convs;
    }
  }
  EXPECT_GT(relu_convs, 5);
  // head conv has no relu
  EXPECT_FALSE(fg.ops[static_cast<std::size_t>(fg.output_op)].relu);
}

TEST(Fold, OpCountIsCompact) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  // depth-2 U-Net: input + 11 convs (4 enc + 2 bottleneck + 4 dec + head) +
  // 2 tconvs + 2 pools + 2 concats = 18 ops.
  EXPECT_EQ(fg.ops.size(), 18u);
}

// ------------------------------------------------------------------ PTQ --

TEST(Ptq, QuantizedOutputTracksFloat) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  const QGraph qg = quantize(fg, net.calibration);
  const TensorF x = net.calibration[0];
  const TensorF float_logits = fg.forward(x);
  const TensorI8 qout = qg.forward(quantize_input(qg, x));
  const TensorF deq = dequantize_output(qg, qout);
  const float scale = tensor::max_abs(float_logits);
  EXPECT_LT(tensor::max_abs_diff(float_logits, deq), 0.25f * scale + 0.1f);
}

TEST(Ptq, ArgmaxAgreementHigh) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  const QGraph qg = quantize(fg, net.calibration);
  const TensorF x = random_tensor(Shape{16, 16, 1}, 321);
  const TensorF float_logits = fg.forward(x);
  const TensorI8 qout = qg.forward(quantize_input(qg, x));
  std::int64_t agree = 0;
  for (std::int64_t i = 0; i < 16 * 16; ++i) {
    int fbest = 0, qbest = 0;
    for (int c = 1; c < 6; ++c) {
      if (float_logits[i * 6 + c] > float_logits[i * 6 + fbest]) fbest = c;
      if (qout[i * 6 + c] > qout[i * 6 + qbest]) qbest = c;
    }
    agree += (fbest == qbest);
  }
  EXPECT_GT(static_cast<double>(agree) / 256.0, 0.9);
}

TEST(Ptq, InputFixPosStoredForHostScaling) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  const QGraph qg = quantize(fg, net.calibration);
  // [-1,1] inputs quantize at 6 or 7 fractional bits
  EXPECT_GE(qg.input_fix_pos, 6);
  EXPECT_LE(qg.input_fix_pos, 7);
}

TEST(Ptq, MaxPoolInheritsProducerFixPos) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  const QGraph qg = quantize(fg, net.calibration);
  for (std::size_t i = 0; i < qg.ops.size(); ++i) {
    if (qg.ops[i].kind == QOpKind::kMaxPool2D) {
      const int src = qg.ops[i].inputs[0];
      EXPECT_EQ(qg.ops[i].fix_pos_out,
                qg.ops[static_cast<std::size_t>(src)].fix_pos_out);
    }
  }
}

TEST(Ptq, WeightBytesMatchParams) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  const QGraph qg = quantize(fg, net.calibration);
  std::int64_t conv_weights = 0;
  for (const auto& op : fg.ops) conv_weights += op.weights.numel();
  EXPECT_EQ(qg.weight_bytes(),
            conv_weights + 4 * static_cast<std::int64_t>([&] {
              std::int64_t biases = 0;
              for (const auto& op : qg.ops) biases += static_cast<std::int64_t>(op.bias.size());
              return biases;
            }()));
}

TEST(Ptq, EmptyCalibrationThrows) {
  TinyNet net;
  const FGraph fg = fold(*net.graph);
  EXPECT_THROW(quantize(fg, {}), std::invalid_argument);
}

// ------------------------------------------------------------------ FFQ --

TEST(Ffq, NotWorseThanPtqOnCalibration) {
  TinyNet net(17);
  const FGraph fg = fold(*net.graph);
  const QGraph ptq = quantize(fg, net.calibration, {QuantMode::kPTQ});
  const QGraph ffq = quantize(fg, net.calibration, {QuantMode::kFFQ});

  auto mse_vs_float = [&](const QGraph& qg) {
    double mse = 0.0;
    for (const auto& img : net.calibration) {
      const TensorF ref = fg.forward(img);
      const TensorF deq = dequantize_output(qg, qg.forward(quantize_input(qg, img)));
      for (std::int64_t i = 0; i < ref.numel(); ++i) {
        mse += (ref[i] - deq[i]) * (ref[i] - deq[i]);
      }
    }
    return mse;
  };
  EXPECT_LE(mse_vs_float(ffq), mse_vs_float(ptq) * 1.05);
}

// ------------------------------------------------------------------ QAT --

TEST(Qat, FakeQuantizeSnapsToGrid) {
  TensorF t = random_tensor(Shape{64}, 23);
  fake_quantize(t);
  const int fp = choose_fix_pos(t);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const double scaled = t[i] * std::ldexp(1.0, fp);
    EXPECT_NEAR(scaled, std::nearbyint(scaled), 1e-4);
  }
}

TEST(Qat, FakeQuantizeIdempotent) {
  TensorF t = random_tensor(Shape{64}, 29);
  fake_quantize(t);
  TensorF once = t;
  fake_quantize(t);
  EXPECT_LT(tensor::max_abs_diff(once, t), 1e-6);
}

TEST(Qat, FinetuneRunsAndReturnsFiniteLoss) {
  TinyNet net(31);
  std::vector<nn::Sample> data;
  util::Rng rng(33);
  for (int i = 0; i < 3; ++i) {
    nn::Sample s;
    s.image = random_tensor(Shape{16, 16, 1}, 40 + static_cast<std::uint64_t>(i));
    s.labels = nn::LabelMap(Shape{16, 16});
    for (auto& v : s.labels) v = static_cast<std::int32_t>(rng.uniform_index(6));
    data.push_back(std::move(s));
  }
  nn::CrossEntropyLoss loss;
  QatOptions opts;
  opts.epochs = 1;
  const double final_loss = qat_finetune(*net.graph, loss, data, opts);
  EXPECT_TRUE(std::isfinite(final_loss));
  EXPECT_GT(final_loss, 0.0);
}

// ------------------------------------------------------- int8 kernels ----

TEST(QKernels, ConcatRequantizes) {
  TensorI8 a(Shape{1, 1, 2});
  a[0] = 64; a[1] = -64;          // fp 6
  TensorI8 b(Shape{1, 1, 1});
  b[0] = 32;                      // fp 4
  TensorI8 out(Shape{1, 1, 3});
  qconcat_forward(a, 6, b, 4, out, 4);
  EXPECT_EQ(out[0], 16);          // 64 * 2^-2
  EXPECT_EQ(out[1], -16);
  EXPECT_EQ(out[2], 32);          // same fp
}

TEST(QKernels, ConvIdentityKernel) {
  QOp op;
  op.kind = QOpKind::kConv2D;
  op.kernel = 3;
  op.out_shape = Shape{4, 4, 1};
  op.fix_pos_w = 0;
  op.fix_pos_out = 5;
  op.relu = false;
  op.weights = TensorI8(Shape{3, 3, 1, 1}, 0);
  op.weights[4] = 1;  // center tap
  op.bias = {0};
  TensorI8 x(Shape{4, 4, 1});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<std::int8_t>(i * 3 - 20);
  TensorI8 out(Shape{4, 4, 1});
  qconv2d_forward(x, op, out, 5);  // shift = 5 + 0 - 5 = 0
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], x[i]);
}

TEST(QKernels, ConvReluClampsNegative) {
  QOp op;
  op.kind = QOpKind::kConv2D;
  op.kernel = 1;
  op.out_shape = Shape{2, 2, 1};
  op.fix_pos_w = 0;
  op.fix_pos_out = 0;
  op.relu = true;
  op.weights = TensorI8(Shape{1, 1, 1, 1});
  op.weights[0] = 1;
  op.bias = {-5};
  TensorI8 x(Shape{2, 2, 1}, 2);
  TensorI8 out(Shape{2, 2, 1});
  qconv2d_forward(x, op, out, 0);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], 0);
}

TEST(QKernels, MaxPoolInt8) {
  TensorI8 x(Shape{2, 2, 1});
  x[0] = -100; x[1] = 5; x[2] = -3; x[3] = -120;
  TensorI8 out(Shape{1, 1, 1});
  qmaxpool2d_forward(x, out);
  EXPECT_EQ(out[0], 5);
}

}  // namespace
}  // namespace seneca::quant
