// InferenceServer tests: end-to-end bit-exactness against the reference
// core simulator, interactive-before-batch scheduling under contention,
// graceful degradation to a smaller ladder model under synthetic overload,
// overload rejection, deadline expiry, and shutdown semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace seneca::serve {

/// White-box access to LatencyHistogram internals: the max_ms-below-bucket
/// clamp branch in snapshot() cannot be reached through record() (the max
/// is by construction at least any sample's bucket lower bound), so the
/// test forges the state directly.
class LatencyHistogramTestPeer {
 public:
  static void set_state(LatencyHistogram& h, int bucket, std::uint64_t count,
                        double max_ms) {
    h.buckets_[static_cast<std::size_t>(bucket)].store(count);
    h.count_.store(count);
    h.max_ms_.store(max_ms);
  }
  static double bucket_lower_ms(int bucket) {
    return bucket == 0 ? 0.0 : LatencyHistogram::bucket_upper_ms(bucket - 1);
  }
};

namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

dpu::XModel build_model(std::int64_t input_size, int depth,
                        std::int64_t base_filters, std::uint64_t seed) {
  nn::UNet2DConfig cfg;
  cfg.input_size = input_size;
  cfg.depth = depth;
  cfg.base_filters = base_filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  TensorF x(Shape{input_size, input_size, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TensorI8 random_input(std::int64_t input_size, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{input_size, input_size, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

ServerConfig fast_config() {
  ServerConfig cfg;
  cfg.queue.capacity = 64;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 0.0;  // no batching delay in unit tests
  cfg.degrade.queue_depth_high = 1000;  // degradation off unless enabled
  return cfg;
}

TEST(ServeMetrics, HistogramPercentilesTrackRecordedDistribution) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));  // 1..100 ms
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  // Geometric buckets are ~20 % wide; allow that resolution.
  EXPECT_NEAR(s.p50_ms, 50.0, 12.0);
  EXPECT_NEAR(s.p99_ms, 99.0, 22.0);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms + 1e-9);
  // Snapshot reuses eval/stats: stddev of 1..100 is ~29.0.
  EXPECT_EQ(s.stats.n, 100u);
  EXPECT_NEAR(s.stats.stddev, 29.0115, 0.01);
}

TEST(ServeMetrics, EmptyHistogramSnapshotsToZeros) {
  LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 0.0);
  EXPECT_EQ(s.stats.n, 0u);
}

TEST(ServeMetrics, SingleSampleQuantilesAllEqualTheSample) {
  LatencyHistogram h;
  h.record(5.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  // One sample: every quantile interpolates to min(bucket upper, max) = 5.
  EXPECT_DOUBLE_EQ(s.p50_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.stats.stddev, 0.0);
}

TEST(ServeMetrics, AllSamplesInBucketZeroStayWithinItsRange) {
  LatencyHistogram h;
  for (int i = 0; i < 5; ++i) h.record(1e-4);  // below kLoMs: bucket 0
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  // Bucket 0 spans [0, min(kLoMs, max)]; all quantiles interpolate inside.
  EXPECT_GE(s.p50_ms, 0.0);
  EXPECT_LE(s.p50_ms, 1e-4 + 1e-12);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms + 1e-12);
  EXPECT_DOUBLE_EQ(s.max_ms, 1e-4);
}

TEST(ServeMetrics, MaxBelowWinningBucketLowerBoundClampsToLowerBound) {
  // Forged state: all mass in bucket 50 but max_ms far below that bucket's
  // lower bound. Without the std::max(hi, lo) clamp the interpolation span
  // (hi - lo) would be negative and the quantile would undershoot lo.
  LatencyHistogram h;
  const double lo = LatencyHistogramTestPeer::bucket_lower_ms(50);
  LatencyHistogramTestPeer::set_state(h, 50, 4, /*max_ms=*/lo * 0.01);
  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.p50_ms, lo);
  EXPECT_DOUBLE_EQ(s.p99_ms, lo);
  EXPECT_GE(s.p50_ms, 0.0);
}

TEST(ServeMetrics, NearestRankQuantileSmallWindowRegression) {
  // The old trigger indexed sorted[size_t(0.99 * (n - 1))], truncating
  // toward zero: for n = 2 that is index 0 — the *minimum* — so a window
  // of {2 ms, 100 ms} reported a "p99" of 2 ms and a 50 ms threshold never
  // fired. Nearest rank (ceil) reports the tail.
  const std::vector<double> two{2.0, 100.0};
  const auto old_index =
      static_cast<std::size_t>(0.99 * static_cast<double>(two.size() - 1));
  ASSERT_EQ(old_index, 0u);  // the bug: picks the minimum
  EXPECT_DOUBLE_EQ(nearest_rank_quantile(two, 0.99), 100.0);

  // n = 1: the single sample is every quantile.
  EXPECT_DOUBLE_EQ(nearest_rank_quantile({7.5}, 0.99), 7.5);

  // n = 10: old index floor(0.99 * 9) = 8 reported the 9th-smallest value;
  // nearest rank ceil(9.9) = 10 reports the maximum.
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(static_cast<double>(i));
  ASSERT_EQ(static_cast<std::size_t>(0.99 * 9.0), 8u);
  EXPECT_DOUBLE_EQ(nearest_rank_quantile(ten, 0.99), 10.0);

  EXPECT_DOUBLE_EQ(nearest_rank_quantile(ten, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(nearest_rank_quantile(std::vector<double>{}, 0.99), 0.0);
}

TEST(InferenceServer, ServesBitExactAgainstReferenceSim) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  dpu::DpuCoreSim reference(&model);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 2});
  InferenceServer server(std::move(ladder), fast_config());

  std::vector<TensorI8> inputs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(random_input(16, 100 + static_cast<std::uint64_t>(i)));
    const Priority p = i % 2 == 0 ? Priority::kInteractive : Priority::kBatch;
    futures.push_back(server.submit(p, inputs.back()));
  }
  for (int i = 0; i < 6; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    EXPECT_EQ(r.model_used, "1M");
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(tensor::max_abs_diff(
                  r.output,
                  reference.run(inputs[static_cast<std::size_t>(i)]).output),
              0.0)
        << "request " << i;
  }
  const auto m = server.metrics();
  EXPECT_EQ(m.served, 6u);
  EXPECT_EQ(m.dropped(), 0u);
  EXPECT_EQ(m.degraded, 0u);
  EXPECT_GT(m.interactive.count, 0u);
  EXPECT_GT(m.batch.count, 0u);
  EXPECT_GE(m.interactive.p99_ms, m.interactive.p50_ms);
}

TEST(InferenceServer, InteractiveServedBeforeBatchUnderContention) {
  // 32x32 model: one inference takes ~milliseconds, so the plug request
  // keeps the scheduler busy while the later submissions (microseconds)
  // land in the queue.
  const dpu::XModel model = build_model(32, 2, 4, 5);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), fast_config());

  auto plug = server.submit(Priority::kInteractive, random_input(32, 1));
  std::vector<std::future<Response>> batch_futures;
  std::vector<std::future<Response>> interactive_futures;
  for (int i = 0; i < 4; ++i) {
    batch_futures.push_back(
        server.submit(Priority::kBatch, random_input(32, 10 + static_cast<std::uint64_t>(i))));
  }
  for (int i = 0; i < 4; ++i) {
    interactive_futures.push_back(server.submit(
        Priority::kInteractive, random_input(32, 20 + static_cast<std::uint64_t>(i))));
  }
  ASSERT_EQ(plug.get().status, Status::kOk);
  std::uint64_t max_interactive_seq = 0;
  for (auto& f : interactive_futures) {
    Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    max_interactive_seq = std::max(max_interactive_seq, r.served_seq);
  }
  std::uint64_t min_batch_seq = UINT64_MAX;
  for (auto& f : batch_futures) {
    Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    min_batch_seq = std::min(min_batch_seq, r.served_seq);
  }
  EXPECT_LT(max_interactive_seq, min_batch_seq)
      << "batch-lane work was dispatched before the interactive lane drained";
}

TEST(InferenceServer, DegradesToSmallerModelUnderOverloadBitExactly) {
  const dpu::XModel big = build_model(16, 2, 4, 3);
  const dpu::XModel small = build_model(16, 1, 2, 7);
  dpu::DpuCoreSim big_ref(&big);
  dpu::DpuCoreSim small_ref(&small);

  ServerConfig cfg = fast_config();
  cfg.batcher.max_batch_size = 2;   // several dispatches -> level updates
  cfg.degrade.queue_depth_high = 4; // trips early under the flood
  cfg.degrade.queue_depth_low = 0;
  cfg.degrade.min_dwell_ms = 0.0;
  std::vector<ModelSpec> ladder;
  ladder.push_back({"4M", big, 1});
  ladder.push_back({"1M", small, 1});
  InferenceServer server(std::move(ladder), cfg);

  constexpr int kRequests = 16;
  std::vector<TensorI8> inputs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(random_input(16, 300 + static_cast<std::uint64_t>(i)));
    futures.push_back(server.submit(Priority::kInteractive, inputs.back()));
  }

  int degraded_count = 0;
  for (int i = 0; i < kRequests; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    // Response id equals submission order (single submitting thread).
    const auto& input = inputs[static_cast<std::size_t>(r.id)];
    if (r.degraded) {
      ++degraded_count;
      EXPECT_EQ(r.model_used, "1M");
      EXPECT_EQ(tensor::max_abs_diff(r.output, small_ref.run(input).output),
                0.0)
          << "degraded response not bit-exact with the small model";
    } else {
      EXPECT_EQ(r.model_used, "4M");
      EXPECT_EQ(tensor::max_abs_diff(r.output, big_ref.run(input).output), 0.0);
    }
  }
  EXPECT_GT(degraded_count, 0)
      << "synthetic overload never tripped the degradation ladder";
  const auto m = server.metrics();
  EXPECT_EQ(m.served, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(m.degraded, 0u);
  EXPECT_EQ(m.degraded, static_cast<std::uint64_t>(degraded_count));
}

TEST(InferenceServer, RejectsBeyondQueueCapacity) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  ServerConfig cfg = fast_config();
  cfg.queue.capacity = 2;
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), cfg);

  constexpr int kRequests = 50;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(Priority::kBatch,
                                    random_input(16, static_cast<std::uint64_t>(i))));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    r.status == Status::kOk ? ++ok : ++rejected;
  }
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GT(rejected, 0) << "a 2-deep queue absorbed 50 instant submissions";
  const auto m = server.metrics();
  EXPECT_EQ(m.served, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(m.dropped(), static_cast<std::uint64_t>(rejected));
  EXPECT_LE(server.queue_stats().high_water, 2u);
}

TEST(InferenceServer, ExpiredRequestDroppedAtDispatch) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), fast_config());

  auto doomed = server.submit(Priority::kInteractive, random_input(16, 1),
                              /*deadline_ms=*/1e-4);
  auto healthy = server.submit(Priority::kInteractive, random_input(16, 2));
  EXPECT_EQ(doomed.get().status, Status::kExpired);
  EXPECT_EQ(healthy.get().status, Status::kOk);
  EXPECT_GE(server.metrics().expired, 1u);
}

TEST(InferenceServer, LatencyP99TriggerFiresAtConfiguredThreshold) {
  // Latency-only degradation with a tiny window: every served interactive
  // frame takes far longer than the 0.01 ms threshold, so the very next
  // dispatch after the first completion must step down the ladder. (The old
  // floor-based index read the window *minimum* at n = 2; see
  // NearestRankQuantileSmallWindowRegression for the index-level proof.)
  const dpu::XModel big = build_model(16, 2, 4, 3);
  const dpu::XModel small = build_model(16, 1, 2, 7);
  ServerConfig cfg = fast_config();
  cfg.degrade.queue_depth_high = 1000000;  // isolate the latency trigger
  cfg.degrade.queue_depth_low = 0;
  cfg.degrade.p99_high_ms = 0.01;
  cfg.degrade.p99_window = 2;
  cfg.degrade.min_dwell_ms = 0.0;
  std::vector<ModelSpec> ladder;
  ladder.push_back({"4M", big, 1});
  ladder.push_back({"1M", small, 1});
  InferenceServer server(std::move(ladder), cfg);

  const Response first =
      server.submit(Priority::kInteractive, random_input(16, 1)).get();
  ASSERT_EQ(first.status, Status::kOk);
  EXPECT_FALSE(first.degraded) << "window was empty at the first dispatch";

  const Response second =
      server.submit(Priority::kInteractive, random_input(16, 2)).get();
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_TRUE(second.degraded)
      << "one over-threshold sample in the window must trip the trigger";
  EXPECT_EQ(second.model_used, "1M");
  EXPECT_EQ(server.degrade_level(), 1);
}

TEST(InferenceServer, DispatchFaultFailsOnlyItsBatchAndServerKeepsServing) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), fast_config());

  auto armed = std::make_shared<std::atomic<bool>>(true);
  server.runner(0).set_run_fault_hook([armed](std::size_t) {
    if (armed->exchange(false)) {
      throw std::runtime_error("injected DPU fault");
    }
  });

  auto doomed = server.submit(Priority::kInteractive, random_input(16, 1));
  const Response failed = doomed.get();
  EXPECT_EQ(failed.status, Status::kError);

  // The scheduler survived: later requests are served normally.
  for (int i = 0; i < 3; ++i) {
    const Response r =
        server.submit(Priority::kInteractive, random_input(16, 10 + static_cast<std::uint64_t>(i)))
            .get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
  }
  const auto m = server.metrics();
  EXPECT_EQ(m.errors, 1u);
  EXPECT_EQ(m.served, 3u);
  EXPECT_EQ(m.completed(), 4u);
}

TEST(InferenceServer, ShutdownDrainsThenRejectsNewWork) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 2});
  InferenceServer server(std::move(ladder), fast_config());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.submit(Priority::kBatch,
                                    random_input(16, static_cast<std::uint64_t>(i))));
  }
  server.shutdown();
  for (auto& f : futures) {
    const Response r = f.get();
    // Every future resolves: either served before close or rejected by it.
    EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kRejected);
  }
  auto late = server.submit(Priority::kInteractive, random_input(16, 99));
  EXPECT_EQ(late.get().status, Status::kRejected);
}

}  // namespace
}  // namespace seneca::serve
