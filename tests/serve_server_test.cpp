// InferenceServer tests: end-to-end bit-exactness against the reference
// core simulator, interactive-before-batch scheduling under contention,
// graceful degradation to a smaller ladder model under synthetic overload,
// overload rejection, deadline expiry, and shutdown semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace seneca::serve {
namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

dpu::XModel build_model(std::int64_t input_size, int depth,
                        std::int64_t base_filters, std::uint64_t seed) {
  nn::UNet2DConfig cfg;
  cfg.input_size = input_size;
  cfg.depth = depth;
  cfg.base_filters = base_filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  TensorF x(Shape{input_size, input_size, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TensorI8 random_input(std::int64_t input_size, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{input_size, input_size, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

ServerConfig fast_config() {
  ServerConfig cfg;
  cfg.queue.capacity = 64;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 0.0;  // no batching delay in unit tests
  cfg.degrade.queue_depth_high = 1000;  // degradation off unless enabled
  return cfg;
}

TEST(ServeMetrics, HistogramPercentilesTrackRecordedDistribution) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));  // 1..100 ms
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  // Geometric buckets are ~20 % wide; allow that resolution.
  EXPECT_NEAR(s.p50_ms, 50.0, 12.0);
  EXPECT_NEAR(s.p99_ms, 99.0, 22.0);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms + 1e-9);
  // Snapshot reuses eval/stats: stddev of 1..100 is ~29.0.
  EXPECT_EQ(s.stats.n, 100u);
  EXPECT_NEAR(s.stats.stddev, 29.0115, 0.01);
}

TEST(ServeMetrics, EmptyHistogramSnapshotsToZeros) {
  LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 0.0);
}

TEST(InferenceServer, ServesBitExactAgainstReferenceSim) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  dpu::DpuCoreSim reference(&model);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 2});
  InferenceServer server(std::move(ladder), fast_config());

  std::vector<TensorI8> inputs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(random_input(16, 100 + static_cast<std::uint64_t>(i)));
    const Priority p = i % 2 == 0 ? Priority::kInteractive : Priority::kBatch;
    futures.push_back(server.submit(p, inputs.back()));
  }
  for (int i = 0; i < 6; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    EXPECT_EQ(r.model_used, "1M");
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(tensor::max_abs_diff(
                  r.output,
                  reference.run(inputs[static_cast<std::size_t>(i)]).output),
              0.0)
        << "request " << i;
  }
  const auto m = server.metrics();
  EXPECT_EQ(m.served, 6u);
  EXPECT_EQ(m.dropped(), 0u);
  EXPECT_EQ(m.degraded, 0u);
  EXPECT_GT(m.interactive.count, 0u);
  EXPECT_GT(m.batch.count, 0u);
  EXPECT_GE(m.interactive.p99_ms, m.interactive.p50_ms);
}

TEST(InferenceServer, InteractiveServedBeforeBatchUnderContention) {
  // 32x32 model: one inference takes ~milliseconds, so the plug request
  // keeps the scheduler busy while the later submissions (microseconds)
  // land in the queue.
  const dpu::XModel model = build_model(32, 2, 4, 5);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), fast_config());

  auto plug = server.submit(Priority::kInteractive, random_input(32, 1));
  std::vector<std::future<Response>> batch_futures;
  std::vector<std::future<Response>> interactive_futures;
  for (int i = 0; i < 4; ++i) {
    batch_futures.push_back(
        server.submit(Priority::kBatch, random_input(32, 10 + static_cast<std::uint64_t>(i))));
  }
  for (int i = 0; i < 4; ++i) {
    interactive_futures.push_back(server.submit(
        Priority::kInteractive, random_input(32, 20 + static_cast<std::uint64_t>(i))));
  }
  ASSERT_EQ(plug.get().status, Status::kOk);
  std::uint64_t max_interactive_seq = 0;
  for (auto& f : interactive_futures) {
    Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    max_interactive_seq = std::max(max_interactive_seq, r.served_seq);
  }
  std::uint64_t min_batch_seq = UINT64_MAX;
  for (auto& f : batch_futures) {
    Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    min_batch_seq = std::min(min_batch_seq, r.served_seq);
  }
  EXPECT_LT(max_interactive_seq, min_batch_seq)
      << "batch-lane work was dispatched before the interactive lane drained";
}

TEST(InferenceServer, DegradesToSmallerModelUnderOverloadBitExactly) {
  const dpu::XModel big = build_model(16, 2, 4, 3);
  const dpu::XModel small = build_model(16, 1, 2, 7);
  dpu::DpuCoreSim big_ref(&big);
  dpu::DpuCoreSim small_ref(&small);

  ServerConfig cfg = fast_config();
  cfg.batcher.max_batch_size = 2;   // several dispatches -> level updates
  cfg.degrade.queue_depth_high = 4; // trips early under the flood
  cfg.degrade.queue_depth_low = 0;
  cfg.degrade.min_dwell_ms = 0.0;
  std::vector<ModelSpec> ladder;
  ladder.push_back({"4M", big, 1});
  ladder.push_back({"1M", small, 1});
  InferenceServer server(std::move(ladder), cfg);

  constexpr int kRequests = 16;
  std::vector<TensorI8> inputs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(random_input(16, 300 + static_cast<std::uint64_t>(i)));
    futures.push_back(server.submit(Priority::kInteractive, inputs.back()));
  }

  int degraded_count = 0;
  for (int i = 0; i < kRequests; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    // Response id equals submission order (single submitting thread).
    const auto& input = inputs[static_cast<std::size_t>(r.id)];
    if (r.degraded) {
      ++degraded_count;
      EXPECT_EQ(r.model_used, "1M");
      EXPECT_EQ(tensor::max_abs_diff(r.output, small_ref.run(input).output),
                0.0)
          << "degraded response not bit-exact with the small model";
    } else {
      EXPECT_EQ(r.model_used, "4M");
      EXPECT_EQ(tensor::max_abs_diff(r.output, big_ref.run(input).output), 0.0);
    }
  }
  EXPECT_GT(degraded_count, 0)
      << "synthetic overload never tripped the degradation ladder";
  const auto m = server.metrics();
  EXPECT_EQ(m.served, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(m.degraded, 0u);
  EXPECT_EQ(m.degraded, static_cast<std::uint64_t>(degraded_count));
}

TEST(InferenceServer, RejectsBeyondQueueCapacity) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  ServerConfig cfg = fast_config();
  cfg.queue.capacity = 2;
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), cfg);

  constexpr int kRequests = 50;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(Priority::kBatch,
                                    random_input(16, static_cast<std::uint64_t>(i))));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    r.status == Status::kOk ? ++ok : ++rejected;
  }
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GT(rejected, 0) << "a 2-deep queue absorbed 50 instant submissions";
  const auto m = server.metrics();
  EXPECT_EQ(m.served, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(m.dropped(), static_cast<std::uint64_t>(rejected));
  EXPECT_LE(server.queue_stats().high_water, 2u);
}

TEST(InferenceServer, ExpiredRequestDroppedAtDispatch) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 1});
  InferenceServer server(std::move(ladder), fast_config());

  auto doomed = server.submit(Priority::kInteractive, random_input(16, 1),
                              /*deadline_ms=*/1e-4);
  auto healthy = server.submit(Priority::kInteractive, random_input(16, 2));
  EXPECT_EQ(doomed.get().status, Status::kExpired);
  EXPECT_EQ(healthy.get().status, Status::kOk);
  EXPECT_GE(server.metrics().expired, 1u);
}

TEST(InferenceServer, ShutdownDrainsThenRejectsNewWork) {
  const dpu::XModel model = build_model(16, 2, 4, 3);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", model, 2});
  InferenceServer server(std::move(ladder), fast_config());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.submit(Priority::kBatch,
                                    random_input(16, static_cast<std::uint64_t>(i))));
  }
  server.shutdown();
  for (auto& f : futures) {
    const Response r = f.get();
    // Every future resolves: either served before close or rejected by it.
    EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kRejected);
  }
  auto late = server.submit(Priority::kInteractive, random_input(16, 99));
  EXPECT_EQ(late.get().status, Status::kRejected);
}

}  // namespace
}  // namespace seneca::serve
