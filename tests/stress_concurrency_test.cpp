// SENECA-Check stress suite (ctest label: stress). Deliberately racy
// multi-threaded hammering of the serving stack so the sanitizers (TSan in
// CI) see real interleavings: VartRunner submit/stop/collect races and
// concurrent run_batch, ClusterRouter routing while health-driven drain
// flips boards sick/healthy, micro-batcher preemption under mixed-lane
// contention, admission-queue push/pop/requeue storms, thread-pool
// parallel_for from many threads, and log-sink swaps mid-traffic.
//
// Assertions are liveness and conservation properties (every future
// resolves, no request is lost or double-counted, outputs stay bit-exact);
// the sanitizers own the memory/race assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "serve/cluster/router.hpp"
#include "serve/server.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace seneca {
namespace {

using serve::Priority;
using serve::Response;
using serve::Status;
using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

dpu::XModel build_model(int depth, std::int64_t base_filters,
                        std::uint64_t seed) {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = depth;
  cfg.base_filters = base_filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TensorI8 random_input(std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

const dpu::XModel& shared_model() {
  static const dpu::XModel model = build_model(2, 4, 3);
  return model;
}

const dpu::XModel& shared_small_model() {
  static const dpu::XModel model = build_model(1, 2, 7);
  return model;
}

// ----------------------------------------------------------- VartRunner

TEST(StressVartRunner, SubmitStopCollectRace) {
  const dpu::XModel& xm = shared_model();
  runtime::VartRunner runner(xm, 3, /*max_pending=*/4);

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> collected{0};
  std::atomic<bool> quit{false};

  std::vector<std::thread> producers;
  producers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 100);
      while (!quit.load(std::memory_order_relaxed)) {
        try {
          if (t % 2 == 0) {
            runner.submit(random_input(rng.uniform_int(0, 1 << 20)));
            submitted.fetch_add(1, std::memory_order_relaxed);
          } else if (runner.try_submit(
                         random_input(rng.uniform_int(0, 1 << 20)))) {
            submitted.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::runtime_error&) {
          break;  // runner stopped mid-submit — the contract under test
        }
      }
    });
  }

  std::thread collector([&] {
    for (;;) {
      try {
        runner.collect();
        collected.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::runtime_error&) {
        break;  // stopped with nothing outstanding
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  runner.stop();  // races against every producer and the collector
  quit.store(true, std::memory_order_relaxed);
  for (auto& t : producers) t.join();
  collector.join();

  EXPECT_TRUE(runner.stopped());
  // stop() drains admitted jobs, so everything submitted was collectable.
  EXPECT_EQ(collected.load(), submitted.load());
  EXPECT_THROW(runner.submit(random_input(1)), std::runtime_error);
}

TEST(StressVartRunner, ConcurrentRunBatchStaysBitExact) {
  const dpu::XModel& xm = shared_model();
  dpu::DpuCoreSim direct(&xm);
  runtime::VartRunner runner(xm, 4);

  constexpr int kThreads = 4;
  constexpr int kBatches = 6;
  constexpr int kBatchSize = 3;

  // Reference outputs computed single-threaded up front.
  std::vector<std::vector<TensorI8>> inputs(kThreads);
  std::vector<std::vector<TensorI8>> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kBatches * kBatchSize; ++i) {
      inputs[static_cast<std::size_t>(t)].push_back(
          random_input(static_cast<std::uint64_t>(t * 1000 + i)));
      expected[static_cast<std::size_t>(t)].push_back(
          direct.run(inputs[static_cast<std::size_t>(t)].back()).output);
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto& in = inputs[static_cast<std::size_t>(t)];
      const auto& exp = expected[static_cast<std::size_t>(t)];
      for (int b = 0; b < kBatches; ++b) {
        const std::vector<TensorI8> batch(
            in.begin() + b * kBatchSize, in.begin() + (b + 1) * kBatchSize);
        // Before collect() went by-id, concurrent run_batch callers stole
        // each other's finished jobs and crashed or cross-wired outputs.
        const std::vector<TensorI8> out = runner.run_batch(batch);
        for (int i = 0; i < kBatchSize; ++i) {
          const auto& want = exp[static_cast<std::size_t>(b * kBatchSize + i)];
          if (tensor::max_abs_diff(out[static_cast<std::size_t>(i)], want) !=
              0.0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// -------------------------------------------------------- AdmissionQueue

TEST(StressAdmissionQueue, PushPopRequeueStorm) {
  serve::QueueConfig cfg;
  cfg.capacity = 16;
  cfg.policy = serve::OverloadPolicy::kRejectNewest;
  serve::AdmissionQueue queue(cfg);

  constexpr int kPushers = 4;
  constexpr int kPerPusher = 200;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> consumed{0};

  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int t = 0; t < kPushers; ++t) {
    pushers.emplace_back([&, t] {
      for (int i = 0; i < kPerPusher; ++i) {
        serve::Request r;
        r.id = static_cast<std::uint64_t>(t * kPerPusher + i);
        r.priority = (i % 3 == 0) ? Priority::kInteractive : Priority::kBatch;
        auto result = queue.push(std::move(r));
        if (result.admitted) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> poppers;
  poppers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    poppers.emplace_back([&, t] {
      int since_requeue = 0;
      while (auto r = queue.pop()) {
        // Periodically hand one back, like the batcher's preemption path.
        if (t == 0 && ++since_requeue % 17 == 0) {
          queue.requeue_front(std::move(*r));
          continue;
        }
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : pushers) t.join();
  queue.close();
  for (auto& t : poppers) t.join();

  // Conservation: with kRejectNewest nothing is evicted post-admission, so
  // every admitted request is consumed exactly once (close() drains).
  EXPECT_EQ(admitted.load() + rejected.load(),
            static_cast<std::uint64_t>(kPushers * kPerPusher));
  EXPECT_EQ(consumed.load(), admitted.load());
  const auto stats = queue.stats();
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.depth, 0u);
}

// ------------------------------------------------- InferenceServer/batcher

std::vector<serve::ModelSpec> two_rung_ladder() {
  std::vector<serve::ModelSpec> ladder;
  ladder.push_back({"4M", shared_model(), 1});
  ladder.push_back({"1M", shared_small_model(), 1});
  return ladder;
}

TEST(StressServer, BatcherPreemptionUnderMixedLaneContention) {
  serve::ServerConfig cfg;
  cfg.queue.capacity = 256;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_wait_ms = 1.0;  // open windows so preemption can strike
  cfg.degrade.queue_depth_high = 16;
  cfg.degrade.queue_depth_low = 2;
  cfg.degrade.min_dwell_ms = 1.0;
  serve::InferenceServer server(two_rung_ladder(), cfg);

  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::vector<std::future<Response>> futures[kClients];
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 7);
      for (int i = 0; i < kPerClient; ++i) {
        const Priority lane =
            (t % 2 == 0) ? Priority::kInteractive : Priority::kBatch;
        futures[t].push_back(
            server.submit(lane, random_input(rng.uniform_int(0, 1 << 20))));
        if (i % 8 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : clients) t.join();

  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) {
      const Response r = f.get();  // liveness: every future resolves
      if (r.status == Status::kOk) {
        ++ok;
      } else {
        ++failed;
      }
    }
  }
  server.shutdown();

  const auto m = server.metrics();
  EXPECT_EQ(ok + failed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(m.completed(), static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(m.served, ok);
  EXPECT_GT(ok, 0u);
}

// ----------------------------------------------------------- ClusterRouter

TEST(StressCluster, RoutingWhileHealthDrainFlips) {
  serve::ServerConfig server_cfg;
  server_cfg.queue.capacity = 128;
  server_cfg.batcher.max_batch_size = 4;
  server_cfg.batcher.max_wait_ms = 0.0;
  server_cfg.degrade.queue_depth_high = 1000;

  serve::cluster::ClusterConfig cluster_cfg;
  cluster_cfg.policy = serve::cluster::PolicyKind::kJoinShortestQueue;
  cluster_cfg.health.queue_saturation = 0.75;

  serve::cluster::ClusterRouter router(
      serve::cluster::replicate_ladder(two_rung_ladder(), 3, server_cfg),
      cluster_cfg);

  std::atomic<bool> quit{false};
  std::thread chaos([&] {
    // Rolling fault injection: at any instant at most one board is sick,
    // so the cluster keeps absorbing traffic while drains overlap routing.
    int victim = 0;
    while (!quit.load(std::memory_order_relaxed)) {
      router.board(static_cast<std::size_t>(victim)).inject_fault(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      router.board(static_cast<std::size_t>(victim)).inject_fault(false);
      victim = (victim + 1) % 3;
    }
  });

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::future<Response>> futures[kClients];
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 31);
      for (int i = 0; i < kPerClient; ++i) {
        futures[t].push_back(router.submit(
            (i % 2 == 0) ? Priority::kInteractive : Priority::kBatch,
            random_input(rng.uniform_int(0, 1 << 20))));
        if (i % 4 == 0) {
          (void)router.states();  // concurrent health assessment
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  std::uint64_t resolved = 0;
  std::uint64_t ok = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) {
      const Response r = f.get();
      ++resolved;
      if (r.status == Status::kOk) ++ok;
    }
  }
  quit.store(true, std::memory_order_relaxed);
  chaos.join();
  router.shutdown();

  EXPECT_EQ(resolved, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(ok, 0u);
  const auto snap = router.snapshot();
  EXPECT_EQ(snap.served, ok);
}

// -------------------------------------------------------------- ThreadPool

TEST(StressThreadPool, ParallelForFromManyThreads) {
  util::ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kRange = 512;
  std::atomic<std::uint64_t> total{0};

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        std::atomic<std::uint64_t> local{0};
        pool.parallel_for(0, kRange, [&](std::size_t i) {
          local.fetch_add(i, std::memory_order_relaxed);
        });
        total.fetch_add(local.load(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : callers) t.join();

  const std::uint64_t per_call = kRange * (kRange - 1) / 2;
  EXPECT_EQ(total.load(), per_call * kCallers * 8);
}

// ----------------------------------------------------------------- Logging

TEST(StressLogging, SinkSwapUnderConcurrentTraffic) {
  std::atomic<std::uint64_t> captured{0};
  std::atomic<bool> quit{false};

  std::vector<std::thread> loggers;
  loggers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    loggers.emplace_back([&, t] {
      int i = 0;
      while (!quit.load(std::memory_order_relaxed)) {
        util::log_info() << "logger " << t << " line " << i++;
      }
    });
  }

  // Swap sinks while the loggers hammer them: before the sink was guarded
  // by the logger mutex, this was a read/write race on the std::function
  // itself. (Both sinks swallow output so the test log stays readable.)
  for (int swaps = 0; swaps < 50; ++swaps) {
    util::set_log_sink([&](util::LogLevel, const std::string&) {
      captured.fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    util::set_log_sink([](util::LogLevel, const std::string&) {});
  }

  quit.store(true, std::memory_order_relaxed);
  for (auto& t : loggers) t.join();
  util::set_log_sink(nullptr);
  EXPECT_GT(captured.load(), 0u);
}

// ----------------------------------------------------------- Tenants

TEST(StressTenants, MultiTenantSubmitsWithConcurrentSnapshots) {
  auto registry = std::make_shared<serve::tenant::TenantRegistry>();
  registry->add({1, "a", /*rate=*/500.0, /*burst=*/16.0, /*weight=*/3});
  registry->add({2, "b", /*rate=*/200.0, /*burst=*/8.0, /*weight=*/1});
  registry->add({3, "c", /*rate=*/0.0, /*burst=*/4.0, /*weight=*/2});

  serve::ServerConfig cfg;
  cfg.queue.capacity = 256;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 1.0;
  cfg.degrade.queue_depth_high = 16;
  cfg.degrade.queue_depth_low = 2;
  cfg.degrade.min_dwell_ms = 1.0;
  cfg.tenants = registry;
  serve::InferenceServer server(two_rung_ladder(), cfg);

  // Tenant threads hammer the bucketed front door while snapshot threads
  // concurrently walk the registry and the server metrics (the racy
  // interleavings TSan is here for: bucket refills under the registry
  // mutex vs. atomic counter reads vs. DRR dequeue).
  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::vector<std::future<Response>> futures[kClients];
  std::atomic<bool> quit{false};
  std::vector<std::thread> snapshotters;
  for (int s = 0; s < 2; ++s) {
    snapshotters.emplace_back([&] {
      while (!quit.load(std::memory_order_relaxed)) {
        (void)registry->snapshot();
        (void)server.metrics();
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      const auto tenant = static_cast<serve::TenantId>(t % 4);  // 0..3
      util::Rng rng(static_cast<std::uint64_t>(t) + 31);
      for (int i = 0; i < kPerClient; ++i) {
        const Priority lane =
            (i % 3 == 0) ? Priority::kBatch : Priority::kInteractive;
        futures[t].push_back(server.submit(
            lane, random_input(rng.uniform_int(0, 1 << 20)), 0.0, tenant));
        if (i % 8 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : clients) t.join();

  std::uint64_t resolved = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) {
      (void)f.get();  // liveness: every future resolves
      ++resolved;
    }
  }
  quit.store(true, std::memory_order_relaxed);
  for (auto& t : snapshotters) t.join();
  server.shutdown();

  EXPECT_EQ(resolved, static_cast<std::uint64_t>(kClients * kPerClient));
  // Conservation per tenant: submitted == throttled + rejected + expired +
  // errors + served, with nothing lost across the concurrent counters.
  std::uint64_t submitted_total = 0;
  for (const auto& t : registry->snapshot()) {
    EXPECT_EQ(t.submitted, t.completed())
        << "tenant " << t.name << " lost a request";
    submitted_total += t.submitted;
  }
  EXPECT_EQ(submitted_total, static_cast<std::uint64_t>(kClients * kPerClient));
  // Tenant 3's bucket never refills: at most `burst` of its submits served.
  const auto snaps = registry->snapshot();
  EXPECT_LE(snaps[3].served, 4u);
  EXPECT_GT(snaps[3].throttled, 0u);
}

}  // namespace
}  // namespace seneca
