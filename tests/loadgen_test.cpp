// Loadgen tests: arrival-process statistics (count, determinism, shape for
// diurnal and flash-crowd traces), population framing, and the open-loop
// runner's accounting against a live InferenceServer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpu/compiler.hpp"
#include "loadgen/arrival.hpp"
#include "loadgen/loadgen.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace seneca::loadgen {
namespace {

TEST(Arrival, PoissonCountMatchesRateTimesDuration) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.rate_per_s = 500.0;
  cfg.duration_s = 4.0;
  util::Rng rng(1);
  const auto t = generate_arrivals(cfg, rng);
  // N ~ Poisson(2000): 5 sigma is ~224.
  EXPECT_NEAR(static_cast<double>(t.size()), 2000.0, 225.0);
  EXPECT_DOUBLE_EQ(cfg.expected_arrivals(), 2000.0);
}

TEST(Arrival, TracesAreSortedInRangeAndSeedDeterministic) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal,
        ArrivalKind::kFlashCrowd}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_per_s = 200.0;
    cfg.duration_s = 2.0;
    util::Rng a(7);
    util::Rng b(7);
    util::Rng c(8);
    const auto ta = generate_arrivals(cfg, a);
    const auto tb = generate_arrivals(cfg, b);
    const auto tc = generate_arrivals(cfg, c);
    EXPECT_EQ(ta, tb) << to_string(kind) << ": same seed, same trace";
    EXPECT_NE(ta, tc) << to_string(kind) << ": different seed differs";
    EXPECT_TRUE(std::is_sorted(ta.begin(), ta.end()));
    ASSERT_FALSE(ta.empty());
    EXPECT_GE(ta.front(), 0.0);
    EXPECT_LT(ta.back(), cfg.duration_s);
  }
}

TEST(Arrival, PopulationFramingOverridesScalarRate) {
  ArrivalConfig cfg;
  cfg.rate_per_s = 1.0;  // ignored once users > 0
  cfg.users = 1000000;
  cfg.per_user_rate_per_s = 2e-4;
  EXPECT_DOUBLE_EQ(cfg.base_rate(), 200.0);
  cfg.duration_s = 2.0;
  util::Rng rng(3);
  const auto t = generate_arrivals(cfg, rng);
  EXPECT_NEAR(static_cast<double>(t.size()), 400.0, 100.0);  // 5 sigma
}

TEST(Arrival, DiurnalFirstHalfDenserWhenPeakIsMidMorning) {
  // rate(t) = base * (1 + a*sin(2*pi*t/T)): positive half-wave in the first
  // half of the period, negative in the second.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.rate_per_s = 400.0;
  cfg.duration_s = 2.0;
  cfg.amplitude = 0.9;
  util::Rng rng(11);
  const auto t = generate_arrivals(cfg, rng);
  const auto half =
      std::lower_bound(t.begin(), t.end(), cfg.duration_s / 2) - t.begin();
  const auto first = static_cast<double>(half);
  const auto second = static_cast<double>(t.size()) - first;
  EXPECT_GT(first, second * 2.0);  // expected ratio ~ (1+2a/pi)/(1-2a/pi) ~ 3.7
  EXPECT_GT(second, 0.0);
}

TEST(Arrival, FlashCrowdBurstWindowIsDenser) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kFlashCrowd;
  cfg.rate_per_s = 100.0;
  cfg.duration_s = 3.0;
  cfg.burst_multiplier = 10.0;
  cfg.burst_start_s = 1.0;
  cfg.burst_len_s = 1.0;
  EXPECT_DOUBLE_EQ(cfg.rate_at(0.5), 100.0);
  EXPECT_DOUBLE_EQ(cfg.rate_at(1.5), 1000.0);
  EXPECT_DOUBLE_EQ(cfg.peak_rate(), 1000.0);
  EXPECT_DOUBLE_EQ(cfg.expected_arrivals(), 100.0 * 2.0 + 1000.0);
  util::Rng rng(5);
  const auto t = generate_arrivals(cfg, rng);
  std::size_t in_burst = 0;
  for (double x : t) in_burst += (x >= 1.0 && x < 2.0) ? 1 : 0;
  const auto outside = static_cast<double>(t.size() - in_burst);
  // Burst second carries ~1000 arrivals vs ~200 outside.
  EXPECT_GT(static_cast<double>(in_burst), outside * 3.0);
}

TEST(Arrival, ParseRoundTrips) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal,
        ArrivalKind::kFlashCrowd}) {
    EXPECT_EQ(parse_arrival_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_arrival_kind("tidal"), std::invalid_argument);
}

// ---- open-loop runner against a live server ----

dpu::XModel tiny_model() {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 1;
  cfg.base_filters = 2;
  cfg.seed = 9;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(10);
  tensor::TensorF x(tensor::Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<tensor::TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TEST(OpenLoopRunner, AccountsEveryArrivalExactlyOnce) {
  std::vector<serve::ModelSpec> ladder;
  ladder.push_back({"1M", tiny_model(), 2});
  serve::ServerConfig cfg;
  cfg.queue.capacity = 64;
  cfg.batcher.max_wait_ms = 0.0;
  cfg.degrade.queue_depth_high = 1000;
  serve::InferenceServer server(std::move(ladder), cfg);
  auto submit = [&server](serve::Priority p, tensor::TensorI8 input,
                          double deadline_ms, serve::TenantId tenant) {
    return server.submit(p, std::move(input), deadline_ms, tenant);
  };

  TenantWorkload w;
  w.tenant = serve::kDefaultTenant;
  w.name = "smoke";
  w.arrivals.rate_per_s = 80.0;
  w.arrivals.duration_s = 0.5;
  w.interactive_fraction = 0.5;
  w.deadline_ms = 500.0;
  RunConfig run_cfg;
  run_cfg.seed = 4;
  run_cfg.input_size = 16;

  const auto reports = run_open_loop(submit, {w}, run_cfg);
  ASSERT_EQ(reports.size(), 1u);
  const TenantReport& r = reports[0];
  EXPECT_GT(r.offered, 0u);
  // Conservation: every offered arrival resolved to exactly one outcome.
  EXPECT_EQ(r.offered, r.ok + r.rejected + r.expired + r.errors);
  EXPECT_GT(r.wall_s, 0.0);
  EXPECT_GT(r.goodput_per_s, 0.0);
  EXPECT_LE(r.within_deadline, r.ok);
  EXPECT_LE(r.p50_ms, r.p99_ms);
}

TEST(OpenLoopRunner, SameSeedOffersTheSameTrace) {
  // No server needed: resolve every future immediately and compare offered
  // counts across two runs of the same seed.
  const auto instant = [](serve::Priority, tensor::TensorI8,
                          double, serve::TenantId) {
    std::promise<serve::Response> p;
    serve::Response r;
    r.status = serve::Status::kOk;
    r.total_ms = 1.0;
    p.set_value(r);
    return p.get_future();
  };
  TenantWorkload w;
  w.arrivals.rate_per_s = 300.0;
  w.arrivals.duration_s = 0.2;
  RunConfig cfg;
  cfg.seed = 99;
  cfg.input_size = 8;
  const auto a = run_open_loop(instant, {w}, cfg);
  const auto b = run_open_loop(instant, {w}, cfg);
  EXPECT_EQ(a[0].offered, b[0].offered);
  EXPECT_EQ(a[0].ok, a[0].offered);
}

TEST(OpenLoopRunner, JsonCarriesEveryReportField) {
  TenantReport r;
  r.tenant = 3;
  r.name = "icu";
  r.offered = 10;
  r.ok = 8;
  r.rejected = 2;
  r.within_deadline = 7;
  r.wall_s = 1.5;
  r.p99_ms = 42.0;
  r.goodput_per_s = 4.67;
  const std::string json = to_json({r});
  EXPECT_NE(json.find("\"tenant\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"icu\""), std::string::npos);
  EXPECT_NE(json.find("\"offered\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"rejected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"within_deadline\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\": 42.0000"), std::string::npos);
  EXPECT_NE(json.find("\"goodput_per_s\": 4.6700"), std::string::npos);
}

}  // namespace
}  // namespace seneca::loadgen
