// Discrete-event kernel + SoC model tests: event ordering, resource
// accounting, and the thread-scaling behaviour of Fig. 3 / §IV-B.
#include <gtest/gtest.h>

#include "dpu/xmodel.hpp"
#include "runtime/des.hpp"
#include "runtime/soc_sim.hpp"

namespace seneca::runtime {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvances) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(5.5, [&] { seen = q.now(); });
  const double end = q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(end, 5.5);
}

TEST(EventQueue, ScheduleAfterFromInsideEvent) {
  EventQueue q;
  double second = 0.0;
  q.schedule_at(1.0, [&] {
    q.schedule_after(2.0, [&] { second = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(second, 3.0);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_at(1.0, [&] { seen = q.now(); });  // in the past
  });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

TEST(Resource, GrantsUpToCapacity) {
  EventQueue q;
  Resource res(q, 2);
  int granted = 0;
  for (int i = 0; i < 3; ++i) res.acquire([&] { ++granted; });
  q.run();
  EXPECT_EQ(granted, 2);  // third waits
  EXPECT_EQ(res.in_use(), 2);
  res.release();
  q.run();
  EXPECT_EQ(granted, 3);
}

TEST(Resource, FifoAdmission) {
  EventQueue q;
  Resource res(q, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    res.acquire([&order, &res, &q, i] {
      order.push_back(i);
      q.schedule_after(1.0, [&res] { res.release(); });
    });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, BusyTimeAccounting) {
  EventQueue q;
  Resource res(q, 1);
  res.acquire([&] {
    q.schedule_after(10.0, [&] { res.release(); });
  });
  q.run();
  res.finalize();
  EXPECT_NEAR(res.busy_time(), 10.0, 1e-9);
}

// --------------------------------------------------------------- SoC ----

/// Hand-built single-layer xmodel with known latency.
dpu::XModel fake_xmodel(double compute_cycles, std::int64_t ddr_bytes) {
  dpu::XModel xm;
  xm.arch = dpu::DpuArch::b4096();
  xm.arch.job_overhead_cycles = 0.0;
  xm.arch.instr_overhead_cycles = 0.0;
  xm.input_shape = tensor::Shape{8, 8, 1};
  dpu::XLayer layer;
  layer.compute_cycles = compute_cycles;
  layer.ddr_bytes = ddr_bytes;
  xm.layers.push_back(layer);
  xm.output_layer = 0;
  return xm;
}

TEST(SocSim, FpsPositiveAndLatencyAboveDpuTime) {
  const dpu::XModel xm = fake_xmodel(300000.0, 0);  // 1 ms compute
  SocConfig soc;
  const ThroughputReport rep = simulate_throughput(xm, soc, 2, 200);
  EXPECT_GT(rep.fps, 0.0);
  EXPECT_GE(rep.latency_mean_ms, 1.0);
  EXPECT_EQ(rep.images, 200);
}

TEST(SocSim, ThroughputScalesWithThreadsUntilSaturation) {
  const dpu::XModel xm = fake_xmodel(600000.0, 0);  // 2 ms
  SocConfig soc;
  const double f1 = simulate_throughput(xm, soc, 1, 300).fps;
  const double f2 = simulate_throughput(xm, soc, 2, 300).fps;
  const double f4 = simulate_throughput(xm, soc, 4, 300).fps;
  const double f8 = simulate_throughput(xm, soc, 8, 300).fps;
  EXPECT_GT(f2, f1 * 1.3);
  EXPECT_GT(f4, f2 * 1.02);
  // Section IV-B: 8+ threads bring no throughput gain.
  EXPECT_LT(f8, f4 * 1.02);
}

TEST(SocSim, DualCoreBeatsSingleCore) {
  dpu::XModel xm = fake_xmodel(600000.0, 0);
  SocConfig soc;
  const double dual = simulate_throughput(xm, soc, 4, 300).fps;
  xm.arch.cores = 1;
  const double single = simulate_throughput(xm, soc, 4, 300).fps;
  EXPECT_GT(dual, single * 1.6);
}

TEST(SocSim, SaturatedThroughputMatchesCoreCount) {
  // Pure compute model: saturated fps == cores / latency.
  const dpu::XModel xm = fake_xmodel(300000.0, 0);  // 1 ms/core, no memory
  SocConfig soc;
  soc.preprocess_ms = 0.01;
  soc.postprocess_ms = 0.01;
  soc.dispatch_ms = 0.0;
  const ThroughputReport rep = simulate_throughput(xm, soc, 6, 1000);
  EXPECT_NEAR(rep.fps, 2000.0, 60.0);
}

TEST(SocSim, BandwidthContentionSlowsDualCore) {
  // Memory-heavy model: two active cores halve per-core bandwidth.
  const dpu::XModel xm = fake_xmodel(1000.0, 4 << 20);
  SocConfig soc;
  const double lat1 =
      simulate_throughput(xm, soc, 1, 50).latency_mean_ms;
  const double lat4 =
      simulate_throughput(xm, soc, 4, 50).latency_mean_ms;
  EXPECT_GT(lat4, lat1 * 1.2);
}

TEST(SocSim, DpuUtilizationBounded) {
  const dpu::XModel xm = fake_xmodel(300000.0, 0);
  SocConfig soc;
  const ThroughputReport rep = simulate_throughput(xm, soc, 4, 200);
  EXPECT_GT(rep.dpu_busy_cores_avg, 1.0);
  EXPECT_LE(rep.dpu_busy_cores_avg, 2.0 + 1e-9);
  EXPECT_GE(rep.arm_busy_cores_avg, 0.0);
  EXPECT_LE(rep.arm_busy_cores_avg, 4.0 + 1e-9);
}

TEST(SocSim, LatencyPercentileAboveMean) {
  const dpu::XModel xm = fake_xmodel(300000.0, 0);
  SocConfig soc;
  const ThroughputReport rep = simulate_throughput(xm, soc, 4, 200);
  EXPECT_GE(rep.latency_p99_ms, rep.latency_mean_ms * 0.99);
}

TEST(SocSim, DispatchContentionGrowsWithThreads) {
  const dpu::XModel xm = fake_xmodel(30000.0, 0);  // tiny compute: ARM-bound
  SocConfig soc;
  soc.dispatch_contention = 0.5;  // exaggerate for the test
  const double f4 = simulate_throughput(xm, soc, 4, 300).fps;
  const double f16 = simulate_throughput(xm, soc, 16, 300).fps;
  EXPECT_LT(f16, f4);  // more threads actively hurt when dispatch-bound
}

TEST(SocSim, Deterministic) {
  const dpu::XModel xm = fake_xmodel(123456.0, 1 << 20);
  SocConfig soc;
  const ThroughputReport a = simulate_throughput(xm, soc, 3, 100);
  const ThroughputReport b = simulate_throughput(xm, soc, 3, 100);
  EXPECT_DOUBLE_EQ(a.fps, b.fps);
  EXPECT_DOUBLE_EQ(a.latency_mean_ms, b.latency_mean_ms);
}

}  // namespace
}  // namespace seneca::runtime
