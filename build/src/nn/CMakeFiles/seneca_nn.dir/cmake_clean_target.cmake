file(REMOVE_RECURSE
  "libseneca_nn.a"
)
