# Empty dependencies file for seneca_nn.
# This may be replaced when dependencies are built.
