
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/seneca_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/layers2d.cpp" "src/nn/CMakeFiles/seneca_nn.dir/layers2d.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/layers2d.cpp.o.d"
  "/root/repo/src/nn/layers3d.cpp" "src/nn/CMakeFiles/seneca_nn.dir/layers3d.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/layers3d.cpp.o.d"
  "/root/repo/src/nn/layers_common.cpp" "src/nn/CMakeFiles/seneca_nn.dir/layers_common.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/layers_common.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/seneca_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/seneca_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/seneca_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/trainer.cpp.o.d"
  "/root/repo/src/nn/unet.cpp" "src/nn/CMakeFiles/seneca_nn.dir/unet.cpp.o" "gcc" "src/nn/CMakeFiles/seneca_nn.dir/unet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/seneca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seneca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
