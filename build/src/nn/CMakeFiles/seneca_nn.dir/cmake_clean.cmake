file(REMOVE_RECURSE
  "CMakeFiles/seneca_nn.dir/graph.cpp.o"
  "CMakeFiles/seneca_nn.dir/graph.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/layers2d.cpp.o"
  "CMakeFiles/seneca_nn.dir/layers2d.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/layers3d.cpp.o"
  "CMakeFiles/seneca_nn.dir/layers3d.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/layers_common.cpp.o"
  "CMakeFiles/seneca_nn.dir/layers_common.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/loss.cpp.o"
  "CMakeFiles/seneca_nn.dir/loss.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/optimizer.cpp.o"
  "CMakeFiles/seneca_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/trainer.cpp.o"
  "CMakeFiles/seneca_nn.dir/trainer.cpp.o.d"
  "CMakeFiles/seneca_nn.dir/unet.cpp.o"
  "CMakeFiles/seneca_nn.dir/unet.cpp.o.d"
  "libseneca_nn.a"
  "libseneca_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
