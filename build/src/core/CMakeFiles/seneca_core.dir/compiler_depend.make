# Empty compiler generated dependencies file for seneca_core.
# This may be replaced when dependencies are built.
