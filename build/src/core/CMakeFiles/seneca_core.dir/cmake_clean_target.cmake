file(REMOVE_RECURSE
  "libseneca_core.a"
)
