file(REMOVE_RECURSE
  "CMakeFiles/seneca_core.dir/evaluate.cpp.o"
  "CMakeFiles/seneca_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/seneca_core.dir/model_zoo.cpp.o"
  "CMakeFiles/seneca_core.dir/model_zoo.cpp.o.d"
  "CMakeFiles/seneca_core.dir/workflow.cpp.o"
  "CMakeFiles/seneca_core.dir/workflow.cpp.o.d"
  "libseneca_core.a"
  "libseneca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
