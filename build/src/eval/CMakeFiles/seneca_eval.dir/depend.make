# Empty dependencies file for seneca_eval.
# This may be replaced when dependencies are built.
