file(REMOVE_RECURSE
  "libseneca_eval.a"
)
