file(REMOVE_RECURSE
  "CMakeFiles/seneca_eval.dir/metrics.cpp.o"
  "CMakeFiles/seneca_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/seneca_eval.dir/stats.cpp.o"
  "CMakeFiles/seneca_eval.dir/stats.cpp.o.d"
  "CMakeFiles/seneca_eval.dir/table.cpp.o"
  "CMakeFiles/seneca_eval.dir/table.cpp.o.d"
  "libseneca_eval.a"
  "libseneca_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
