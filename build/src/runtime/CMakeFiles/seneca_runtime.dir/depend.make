# Empty dependencies file for seneca_runtime.
# This may be replaced when dependencies are built.
