file(REMOVE_RECURSE
  "CMakeFiles/seneca_runtime.dir/des.cpp.o"
  "CMakeFiles/seneca_runtime.dir/des.cpp.o.d"
  "CMakeFiles/seneca_runtime.dir/soc_sim.cpp.o"
  "CMakeFiles/seneca_runtime.dir/soc_sim.cpp.o.d"
  "CMakeFiles/seneca_runtime.dir/vart.cpp.o"
  "CMakeFiles/seneca_runtime.dir/vart.cpp.o.d"
  "libseneca_runtime.a"
  "libseneca_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
