file(REMOVE_RECURSE
  "libseneca_runtime.a"
)
