# Empty dependencies file for seneca_platform.
# This may be replaced when dependencies are built.
