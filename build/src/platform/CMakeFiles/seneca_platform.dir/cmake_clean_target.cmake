file(REMOVE_RECURSE
  "libseneca_platform.a"
)
