file(REMOVE_RECURSE
  "CMakeFiles/seneca_platform.dir/gpu_model.cpp.o"
  "CMakeFiles/seneca_platform.dir/gpu_model.cpp.o.d"
  "CMakeFiles/seneca_platform.dir/power.cpp.o"
  "CMakeFiles/seneca_platform.dir/power.cpp.o.d"
  "libseneca_platform.a"
  "libseneca_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
