# Empty dependencies file for seneca_dpu.
# This may be replaced when dependencies are built.
