file(REMOVE_RECURSE
  "libseneca_dpu.a"
)
