file(REMOVE_RECURSE
  "CMakeFiles/seneca_dpu.dir/compiler.cpp.o"
  "CMakeFiles/seneca_dpu.dir/compiler.cpp.o.d"
  "CMakeFiles/seneca_dpu.dir/core_sim.cpp.o"
  "CMakeFiles/seneca_dpu.dir/core_sim.cpp.o.d"
  "CMakeFiles/seneca_dpu.dir/disasm.cpp.o"
  "CMakeFiles/seneca_dpu.dir/disasm.cpp.o.d"
  "CMakeFiles/seneca_dpu.dir/isa.cpp.o"
  "CMakeFiles/seneca_dpu.dir/isa.cpp.o.d"
  "CMakeFiles/seneca_dpu.dir/xmodel.cpp.o"
  "CMakeFiles/seneca_dpu.dir/xmodel.cpp.o.d"
  "libseneca_dpu.a"
  "libseneca_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
