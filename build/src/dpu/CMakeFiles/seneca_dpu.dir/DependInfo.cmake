
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpu/compiler.cpp" "src/dpu/CMakeFiles/seneca_dpu.dir/compiler.cpp.o" "gcc" "src/dpu/CMakeFiles/seneca_dpu.dir/compiler.cpp.o.d"
  "/root/repo/src/dpu/core_sim.cpp" "src/dpu/CMakeFiles/seneca_dpu.dir/core_sim.cpp.o" "gcc" "src/dpu/CMakeFiles/seneca_dpu.dir/core_sim.cpp.o.d"
  "/root/repo/src/dpu/disasm.cpp" "src/dpu/CMakeFiles/seneca_dpu.dir/disasm.cpp.o" "gcc" "src/dpu/CMakeFiles/seneca_dpu.dir/disasm.cpp.o.d"
  "/root/repo/src/dpu/isa.cpp" "src/dpu/CMakeFiles/seneca_dpu.dir/isa.cpp.o" "gcc" "src/dpu/CMakeFiles/seneca_dpu.dir/isa.cpp.o.d"
  "/root/repo/src/dpu/xmodel.cpp" "src/dpu/CMakeFiles/seneca_dpu.dir/xmodel.cpp.o" "gcc" "src/dpu/CMakeFiles/seneca_dpu.dir/xmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/seneca_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seneca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seneca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/seneca_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
