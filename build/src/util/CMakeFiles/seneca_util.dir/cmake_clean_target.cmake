file(REMOVE_RECURSE
  "libseneca_util.a"
)
