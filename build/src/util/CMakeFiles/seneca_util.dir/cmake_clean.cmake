file(REMOVE_RECURSE
  "CMakeFiles/seneca_util.dir/cli.cpp.o"
  "CMakeFiles/seneca_util.dir/cli.cpp.o.d"
  "CMakeFiles/seneca_util.dir/io.cpp.o"
  "CMakeFiles/seneca_util.dir/io.cpp.o.d"
  "CMakeFiles/seneca_util.dir/logging.cpp.o"
  "CMakeFiles/seneca_util.dir/logging.cpp.o.d"
  "CMakeFiles/seneca_util.dir/thread_pool.cpp.o"
  "CMakeFiles/seneca_util.dir/thread_pool.cpp.o.d"
  "libseneca_util.a"
  "libseneca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
