# Empty dependencies file for seneca_util.
# This may be replaced when dependencies are built.
