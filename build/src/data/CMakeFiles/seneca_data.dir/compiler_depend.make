# Empty compiler generated dependencies file for seneca_data.
# This may be replaced when dependencies are built.
