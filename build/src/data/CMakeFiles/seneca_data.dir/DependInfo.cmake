
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/calibration.cpp" "src/data/CMakeFiles/seneca_data.dir/calibration.cpp.o" "gcc" "src/data/CMakeFiles/seneca_data.dir/calibration.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/seneca_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/seneca_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/nifti.cpp" "src/data/CMakeFiles/seneca_data.dir/nifti.cpp.o" "gcc" "src/data/CMakeFiles/seneca_data.dir/nifti.cpp.o.d"
  "/root/repo/src/data/phantom.cpp" "src/data/CMakeFiles/seneca_data.dir/phantom.cpp.o" "gcc" "src/data/CMakeFiles/seneca_data.dir/phantom.cpp.o.d"
  "/root/repo/src/data/preprocess.cpp" "src/data/CMakeFiles/seneca_data.dir/preprocess.cpp.o" "gcc" "src/data/CMakeFiles/seneca_data.dir/preprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/seneca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seneca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seneca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
