file(REMOVE_RECURSE
  "CMakeFiles/seneca_data.dir/calibration.cpp.o"
  "CMakeFiles/seneca_data.dir/calibration.cpp.o.d"
  "CMakeFiles/seneca_data.dir/dataset.cpp.o"
  "CMakeFiles/seneca_data.dir/dataset.cpp.o.d"
  "CMakeFiles/seneca_data.dir/nifti.cpp.o"
  "CMakeFiles/seneca_data.dir/nifti.cpp.o.d"
  "CMakeFiles/seneca_data.dir/phantom.cpp.o"
  "CMakeFiles/seneca_data.dir/phantom.cpp.o.d"
  "CMakeFiles/seneca_data.dir/preprocess.cpp.o"
  "CMakeFiles/seneca_data.dir/preprocess.cpp.o.d"
  "libseneca_data.a"
  "libseneca_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
