file(REMOVE_RECURSE
  "libseneca_data.a"
)
