file(REMOVE_RECURSE
  "libseneca_tensor.a"
)
