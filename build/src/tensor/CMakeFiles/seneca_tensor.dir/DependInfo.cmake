
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/image_io.cpp" "src/tensor/CMakeFiles/seneca_tensor.dir/image_io.cpp.o" "gcc" "src/tensor/CMakeFiles/seneca_tensor.dir/image_io.cpp.o.d"
  "/root/repo/src/tensor/npy_io.cpp" "src/tensor/CMakeFiles/seneca_tensor.dir/npy_io.cpp.o" "gcc" "src/tensor/CMakeFiles/seneca_tensor.dir/npy_io.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/tensor/CMakeFiles/seneca_tensor.dir/shape.cpp.o" "gcc" "src/tensor/CMakeFiles/seneca_tensor.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seneca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
