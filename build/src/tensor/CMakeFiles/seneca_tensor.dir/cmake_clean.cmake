file(REMOVE_RECURSE
  "CMakeFiles/seneca_tensor.dir/image_io.cpp.o"
  "CMakeFiles/seneca_tensor.dir/image_io.cpp.o.d"
  "CMakeFiles/seneca_tensor.dir/npy_io.cpp.o"
  "CMakeFiles/seneca_tensor.dir/npy_io.cpp.o.d"
  "CMakeFiles/seneca_tensor.dir/shape.cpp.o"
  "CMakeFiles/seneca_tensor.dir/shape.cpp.o.d"
  "libseneca_tensor.a"
  "libseneca_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
