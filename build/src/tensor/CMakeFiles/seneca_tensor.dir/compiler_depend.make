# Empty compiler generated dependencies file for seneca_tensor.
# This may be replaced when dependencies are built.
