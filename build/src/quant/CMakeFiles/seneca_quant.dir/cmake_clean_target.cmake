file(REMOVE_RECURSE
  "libseneca_quant.a"
)
