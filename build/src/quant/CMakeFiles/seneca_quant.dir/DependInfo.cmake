
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/fgraph.cpp" "src/quant/CMakeFiles/seneca_quant.dir/fgraph.cpp.o" "gcc" "src/quant/CMakeFiles/seneca_quant.dir/fgraph.cpp.o.d"
  "/root/repo/src/quant/pruning.cpp" "src/quant/CMakeFiles/seneca_quant.dir/pruning.cpp.o" "gcc" "src/quant/CMakeFiles/seneca_quant.dir/pruning.cpp.o.d"
  "/root/repo/src/quant/qat.cpp" "src/quant/CMakeFiles/seneca_quant.dir/qat.cpp.o" "gcc" "src/quant/CMakeFiles/seneca_quant.dir/qat.cpp.o.d"
  "/root/repo/src/quant/qgraph.cpp" "src/quant/CMakeFiles/seneca_quant.dir/qgraph.cpp.o" "gcc" "src/quant/CMakeFiles/seneca_quant.dir/qgraph.cpp.o.d"
  "/root/repo/src/quant/quantizer.cpp" "src/quant/CMakeFiles/seneca_quant.dir/quantizer.cpp.o" "gcc" "src/quant/CMakeFiles/seneca_quant.dir/quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/seneca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seneca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seneca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
