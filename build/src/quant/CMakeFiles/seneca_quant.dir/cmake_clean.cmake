file(REMOVE_RECURSE
  "CMakeFiles/seneca_quant.dir/fgraph.cpp.o"
  "CMakeFiles/seneca_quant.dir/fgraph.cpp.o.d"
  "CMakeFiles/seneca_quant.dir/pruning.cpp.o"
  "CMakeFiles/seneca_quant.dir/pruning.cpp.o.d"
  "CMakeFiles/seneca_quant.dir/qat.cpp.o"
  "CMakeFiles/seneca_quant.dir/qat.cpp.o.d"
  "CMakeFiles/seneca_quant.dir/qgraph.cpp.o"
  "CMakeFiles/seneca_quant.dir/qgraph.cpp.o.d"
  "CMakeFiles/seneca_quant.dir/quantizer.cpp.o"
  "CMakeFiles/seneca_quant.dir/quantizer.cpp.o.d"
  "libseneca_quant.a"
  "libseneca_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
