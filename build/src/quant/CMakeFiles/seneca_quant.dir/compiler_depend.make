# Empty compiler generated dependencies file for seneca_quant.
# This may be replaced when dependencies are built.
