file(REMOVE_RECURSE
  "CMakeFiles/data_nifti_test.dir/data_nifti_test.cpp.o"
  "CMakeFiles/data_nifti_test.dir/data_nifti_test.cpp.o.d"
  "data_nifti_test"
  "data_nifti_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_nifti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
