# Empty compiler generated dependencies file for data_nifti_test.
# This may be replaced when dependencies are built.
