
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_nifti_test.cpp" "tests/CMakeFiles/data_nifti_test.dir/data_nifti_test.cpp.o" "gcc" "tests/CMakeFiles/data_nifti_test.dir/data_nifti_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seneca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/seneca_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/seneca_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/seneca_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/seneca_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/seneca_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/seneca_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/seneca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seneca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seneca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
