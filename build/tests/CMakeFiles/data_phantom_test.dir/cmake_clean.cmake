file(REMOVE_RECURSE
  "CMakeFiles/data_phantom_test.dir/data_phantom_test.cpp.o"
  "CMakeFiles/data_phantom_test.dir/data_phantom_test.cpp.o.d"
  "data_phantom_test"
  "data_phantom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_phantom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
