# Empty dependencies file for dpu_compiler_test.
# This may be replaced when dependencies are built.
