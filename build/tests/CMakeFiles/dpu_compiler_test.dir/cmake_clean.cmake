file(REMOVE_RECURSE
  "CMakeFiles/dpu_compiler_test.dir/dpu_compiler_test.cpp.o"
  "CMakeFiles/dpu_compiler_test.dir/dpu_compiler_test.cpp.o.d"
  "dpu_compiler_test"
  "dpu_compiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpu_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
