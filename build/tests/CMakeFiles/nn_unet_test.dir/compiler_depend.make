# Empty compiler generated dependencies file for nn_unet_test.
# This may be replaced when dependencies are built.
