file(REMOVE_RECURSE
  "CMakeFiles/nn_unet_test.dir/nn_unet_test.cpp.o"
  "CMakeFiles/nn_unet_test.dir/nn_unet_test.cpp.o.d"
  "nn_unet_test"
  "nn_unet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_unet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
