file(REMOVE_RECURSE
  "CMakeFiles/runtime_des_test.dir/runtime_des_test.cpp.o"
  "CMakeFiles/runtime_des_test.dir/runtime_des_test.cpp.o.d"
  "runtime_des_test"
  "runtime_des_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
