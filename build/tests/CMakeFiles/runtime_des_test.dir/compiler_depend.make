# Empty compiler generated dependencies file for runtime_des_test.
# This may be replaced when dependencies are built.
