# Empty dependencies file for dpu_sim_test.
# This may be replaced when dependencies are built.
