file(REMOVE_RECURSE
  "CMakeFiles/dpu_sim_test.dir/dpu_sim_test.cpp.o"
  "CMakeFiles/dpu_sim_test.dir/dpu_sim_test.cpp.o.d"
  "dpu_sim_test"
  "dpu_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpu_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
