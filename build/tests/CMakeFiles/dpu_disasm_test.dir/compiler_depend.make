# Empty compiler generated dependencies file for dpu_disasm_test.
# This may be replaced when dependencies are built.
