file(REMOVE_RECURSE
  "CMakeFiles/dpu_disasm_test.dir/dpu_disasm_test.cpp.o"
  "CMakeFiles/dpu_disasm_test.dir/dpu_disasm_test.cpp.o.d"
  "dpu_disasm_test"
  "dpu_disasm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpu_disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
