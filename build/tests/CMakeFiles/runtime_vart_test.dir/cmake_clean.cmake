file(REMOVE_RECURSE
  "CMakeFiles/runtime_vart_test.dir/runtime_vart_test.cpp.o"
  "CMakeFiles/runtime_vart_test.dir/runtime_vart_test.cpp.o.d"
  "runtime_vart_test"
  "runtime_vart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_vart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
