# Empty dependencies file for runtime_vart_test.
# This may be replaced when dependencies are built.
