# Empty dependencies file for quant_pruning_test.
# This may be replaced when dependencies are built.
