file(REMOVE_RECURSE
  "CMakeFiles/quant_pruning_test.dir/quant_pruning_test.cpp.o"
  "CMakeFiles/quant_pruning_test.dir/quant_pruning_test.cpp.o.d"
  "quant_pruning_test"
  "quant_pruning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
