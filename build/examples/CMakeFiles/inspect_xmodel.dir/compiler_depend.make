# Empty compiler generated dependencies file for inspect_xmodel.
# This may be replaced when dependencies are built.
