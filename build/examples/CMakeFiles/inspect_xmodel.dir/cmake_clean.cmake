file(REMOVE_RECURSE
  "CMakeFiles/inspect_xmodel.dir/inspect_xmodel.cpp.o"
  "CMakeFiles/inspect_xmodel.dir/inspect_xmodel.cpp.o.d"
  "inspect_xmodel"
  "inspect_xmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_xmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
