# Empty dependencies file for surgery_stream.
# This may be replaced when dependencies are built.
