file(REMOVE_RECURSE
  "CMakeFiles/surgery_stream.dir/surgery_stream.cpp.o"
  "CMakeFiles/surgery_stream.dir/surgery_stream.cpp.o.d"
  "surgery_stream"
  "surgery_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgery_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
