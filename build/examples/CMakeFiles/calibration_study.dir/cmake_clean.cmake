file(REMOVE_RECURSE
  "CMakeFiles/calibration_study.dir/calibration_study.cpp.o"
  "CMakeFiles/calibration_study.dir/calibration_study.cpp.o.d"
  "calibration_study"
  "calibration_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
