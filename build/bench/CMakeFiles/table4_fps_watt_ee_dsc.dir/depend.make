# Empty dependencies file for table4_fps_watt_ee_dsc.
# This may be replaced when dependencies are built.
