file(REMOVE_RECURSE
  "CMakeFiles/table4_fps_watt_ee_dsc.dir/table4_fps_watt_ee_dsc.cpp.o"
  "CMakeFiles/table4_fps_watt_ee_dsc.dir/table4_fps_watt_ee_dsc.cpp.o.d"
  "table4_fps_watt_ee_dsc"
  "table4_fps_watt_ee_dsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fps_watt_ee_dsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
