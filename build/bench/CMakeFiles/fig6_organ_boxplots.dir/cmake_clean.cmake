file(REMOVE_RECURSE
  "CMakeFiles/fig6_organ_boxplots.dir/fig6_organ_boxplots.cpp.o"
  "CMakeFiles/fig6_organ_boxplots.dir/fig6_organ_boxplots.cpp.o.d"
  "fig6_organ_boxplots"
  "fig6_organ_boxplots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_organ_boxplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
