# Empty dependencies file for fig6_organ_boxplots.
# This may be replaced when dependencies are built.
