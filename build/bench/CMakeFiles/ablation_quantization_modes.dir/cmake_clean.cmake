file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantization_modes.dir/ablation_quantization_modes.cpp.o"
  "CMakeFiles/ablation_quantization_modes.dir/ablation_quantization_modes.cpp.o.d"
  "ablation_quantization_modes"
  "ablation_quantization_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantization_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
