# Empty compiler generated dependencies file for ablation_quantization_modes.
# This may be replaced when dependencies are built.
