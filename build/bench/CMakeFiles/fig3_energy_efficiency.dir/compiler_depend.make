# Empty compiler generated dependencies file for fig3_energy_efficiency.
# This may be replaced when dependencies are built.
