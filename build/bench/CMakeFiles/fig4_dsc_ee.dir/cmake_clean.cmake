file(REMOVE_RECURSE
  "CMakeFiles/fig4_dsc_ee.dir/fig4_dsc_ee.cpp.o"
  "CMakeFiles/fig4_dsc_ee.dir/fig4_dsc_ee.cpp.o.d"
  "fig4_dsc_ee"
  "fig4_dsc_ee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dsc_ee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
