# Empty dependencies file for fig4_dsc_ee.
# This may be replaced when dependencies are built.
