file(REMOVE_RECURSE
  "CMakeFiles/table1_organ_frequencies.dir/table1_organ_frequencies.cpp.o"
  "CMakeFiles/table1_organ_frequencies.dir/table1_organ_frequencies.cpp.o.d"
  "table1_organ_frequencies"
  "table1_organ_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_organ_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
