# Empty compiler generated dependencies file for table1_organ_frequencies.
# This may be replaced when dependencies are built.
