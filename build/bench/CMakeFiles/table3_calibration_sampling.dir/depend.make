# Empty dependencies file for table3_calibration_sampling.
# This may be replaced when dependencies are built.
