file(REMOVE_RECURSE
  "CMakeFiles/table3_calibration_sampling.dir/table3_calibration_sampling.cpp.o"
  "CMakeFiles/table3_calibration_sampling.dir/table3_calibration_sampling.cpp.o.d"
  "table3_calibration_sampling"
  "table3_calibration_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_calibration_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
