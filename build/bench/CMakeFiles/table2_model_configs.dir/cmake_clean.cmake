file(REMOVE_RECURSE
  "CMakeFiles/table2_model_configs.dir/table2_model_configs.cpp.o"
  "CMakeFiles/table2_model_configs.dir/table2_model_configs.cpp.o.d"
  "table2_model_configs"
  "table2_model_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_model_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
