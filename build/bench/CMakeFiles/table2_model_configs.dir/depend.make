# Empty dependencies file for table2_model_configs.
# This may be replaced when dependencies are built.
