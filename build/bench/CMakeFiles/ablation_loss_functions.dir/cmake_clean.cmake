file(REMOVE_RECURSE
  "CMakeFiles/ablation_loss_functions.dir/ablation_loss_functions.cpp.o"
  "CMakeFiles/ablation_loss_functions.dir/ablation_loss_functions.cpp.o.d"
  "ablation_loss_functions"
  "ablation_loss_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
