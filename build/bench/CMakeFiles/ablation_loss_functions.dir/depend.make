# Empty dependencies file for ablation_loss_functions.
# This may be replaced when dependencies are built.
