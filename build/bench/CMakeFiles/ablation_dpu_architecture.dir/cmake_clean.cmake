file(REMOVE_RECURSE
  "CMakeFiles/ablation_dpu_architecture.dir/ablation_dpu_architecture.cpp.o"
  "CMakeFiles/ablation_dpu_architecture.dir/ablation_dpu_architecture.cpp.o.d"
  "ablation_dpu_architecture"
  "ablation_dpu_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dpu_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
