# Empty dependencies file for ablation_dpu_architecture.
# This may be replaced when dependencies are built.
