# Empty compiler generated dependencies file for fig5_visual_outputs.
# This may be replaced when dependencies are built.
