file(REMOVE_RECURSE
  "CMakeFiles/fig5_visual_outputs.dir/fig5_visual_outputs.cpp.o"
  "CMakeFiles/fig5_visual_outputs.dir/fig5_visual_outputs.cpp.o.d"
  "fig5_visual_outputs"
  "fig5_visual_outputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_visual_outputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
