# Empty dependencies file for table5_comparison.
# This may be replaced when dependencies are built.
