file(REMOVE_RECURSE
  "libseneca_bench_common.a"
)
