file(REMOVE_RECURSE
  "CMakeFiles/seneca_bench_common.dir/common.cpp.o"
  "CMakeFiles/seneca_bench_common.dir/common.cpp.o.d"
  "libseneca_bench_common.a"
  "libseneca_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seneca_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
