# Empty compiler generated dependencies file for seneca_bench_common.
# This may be replaced when dependencies are built.
